package replica

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/wal"
)

// netListen rebinds addr, retrying while the old listener's port drains.
func netListen(addr string) (net.Listener, error) {
	var last error
	for i := 0; i < 100; i++ {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		last = err
		time.Sleep(10 * time.Millisecond)
	}
	return nil, last
}

// primary wraps a live journal behind an httptest server speaking the
// replication protocol, the way sagserver's /v1/replicate does.
type primary struct {
	t   *testing.T
	dir string
	j   *wal.Journal
	ts  *httptest.Server
}

func newPrimary(t *testing.T) *primary {
	t.Helper()
	dir := t.TempDir()
	j, _, err := wal.Open(dir, wal.Options{Fsync: wal.FsyncAlways, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	p := &primary{t: t, dir: dir, j: j}
	p.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ServeStream(w, r, StreamConfig{Source: p.j, Heartbeat: 5 * time.Millisecond, Logf: t.Logf})
	}))
	t.Cleanup(func() { p.ts.Close(); p.j.Close() })
	return p
}

func (p *primary) append(recs ...wal.Record) {
	p.t.Helper()
	for _, r := range recs {
		if _, err := p.j.Append(r); err != nil {
			p.t.Fatalf("append: %v", err)
		}
	}
}

// applied is a concurrency-safe log of the records a client replayed.
type applied struct {
	mu   sync.Mutex
	recs []wal.Record
}

func (a *applied) apply(r wal.Record, _ wal.Cursor) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.recs = append(a.recs, r)
	return nil
}

func (a *applied) snapshot() []wal.Record {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]wal.Record(nil), a.recs...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func quit(n int) wal.Record { return wal.Record{Kind: wal.KindQuit, Employee: n} }

func TestClientCatchUpAndLiveTail(t *testing.T) {
	p := newPrimary(t)
	p.append(quit(0), quit(1), quit(2))

	dir := t.TempDir()
	var got applied
	cl := NewClient(ClientConfig{
		Primary: p.ts.URL, Tenant: "default", Dir: dir,
		Apply: got.apply,
		Reset: func() error { t.Error("unexpected re-seed"); return nil },
		Logf:  t.Logf,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = cl.Run(ctx) }()

	waitFor(t, "backlog catch-up", func() bool {
		lag, ok := cl.Lag()
		return ok && lag == 0
	})
	// Live tail: records appended while the stream is open arrive too.
	p.append(quit(3), quit(4))
	waitFor(t, "live tail", func() bool { return len(got.snapshot()) == 5 })
	waitFor(t, "zero lag after tail", func() bool {
		lag, ok := cl.Lag()
		return ok && lag == 0
	})
	cancel()
	<-done

	recs := got.snapshot()
	for i, r := range recs {
		if r.Kind != wal.KindQuit || r.Employee != i {
			t.Fatalf("applied[%d] = %+v, want quit %d", i, r, i)
		}
	}
	// The mirror is byte-identical to the primary's journal.
	srcRec, err := wal.Recover(p.dir)
	if err != nil {
		t.Fatal(err)
	}
	dstRec, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if dstRec.End != srcRec.End || dstRec.LastCRC != srcRec.LastCRC || dstRec.Records != srcRec.Records {
		t.Fatalf("mirror recovery (%v %08x n=%d) != source (%v %08x n=%d)",
			dstRec.End, dstRec.LastCRC, dstRec.Records, srcRec.End, srcRec.LastCRC, srcRec.Records)
	}
	st := cl.State()
	if st.Cursor != srcRec.End || st.LastCRC != srcRec.LastCRC || st.Records != int64(srcRec.Records) || !st.Seeded {
		t.Fatalf("client state %+v does not match source recovery (%v %08x n=%d)",
			st, srcRec.End, srcRec.LastCRC, srcRec.Records)
	}
}

// TestClientResumesFromRecoveredState stops a follower, appends more records
// at the primary, and restarts the follower from its own disk the way a
// rebooted standby does: recovery yields the cursor, and the stream resumes
// without a re-seed.
func TestClientResumesFromRecoveredState(t *testing.T) {
	p := newPrimary(t)
	p.append(quit(0), quit(1))

	dir := t.TempDir()
	var got applied
	run := func(st State) *Client {
		cl := NewClient(ClientConfig{
			Primary: p.ts.URL, Tenant: "default", Dir: dir,
			Apply:  got.apply,
			Reset:  func() error { t.Error("unexpected re-seed"); return nil },
			Cursor: st.Cursor, LastCRC: st.LastCRC, Records: st.Records, Seeded: st.Seeded,
			Logf: t.Logf,
		})
		return cl
	}

	cl := run(State{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = cl.Run(ctx) }()
	waitFor(t, "first catch-up", func() bool { return len(got.snapshot()) == 2 })
	cancel()
	<-done

	p.append(quit(2), quit(3))

	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	cl2 := run(State{Cursor: rec.End, LastCRC: rec.LastCRC, Records: int64(rec.Records), Seeded: rec.Records > 0})
	ctx2, cancel2 := context.WithCancel(context.Background())
	done2 := make(chan struct{})
	go func() { defer close(done2); _ = cl2.Run(ctx2) }()
	waitFor(t, "resumed catch-up", func() bool { return len(got.snapshot()) == 4 })
	cancel2()
	<-done2

	for i, r := range got.snapshot() {
		if r.Employee != i {
			t.Fatalf("applied[%d] = %+v: resumed stream repeated or skipped records", i, r)
		}
	}
}

// TestClientReseedsAfterPrune covers the divergence path: while the follower
// is down, the primary snapshots and prunes the segments the follower's
// resume cursor points into. On reconnect the primary demands a re-seed; the
// client must wipe local state, re-mirror from the snapshot, and apply the
// snapshot record first.
func TestClientReseedsAfterPrune(t *testing.T) {
	p := newPrimary(t)
	p.append(quit(0), quit(1), quit(2))

	dir := t.TempDir()
	var got applied
	cl := NewClient(ClientConfig{
		Primary: p.ts.URL, Tenant: "default", Dir: dir,
		Apply: got.apply,
		Reset: func() error { t.Error("unexpected re-seed on first run"); return nil },
		Logf:  t.Logf,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = cl.Run(ctx) }()
	waitFor(t, "first catch-up", func() bool { return len(got.snapshot()) == 3 })
	cancel()
	<-done

	// Follower is down: the primary rolls far enough that a snapshot prunes
	// every segment the follower has (SegmentBytes=128 rolls fast).
	for i := 3; i < 24; i++ {
		p.append(quit(i))
	}
	if err := p.j.Snapshot([]byte(`{"seed":true}`)); err != nil {
		t.Fatal(err)
	}
	p.append(quit(24))
	oldest, ok, err := wal.OldestCursor(p.dir)
	if err != nil || !ok {
		t.Fatalf("OldestCursor: %v ok=%v", err, ok)
	}
	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.End.Seg >= oldest.Seg {
		t.Fatalf("test setup: follower cursor %v not pruned (primary oldest %v)", rec.End, oldest)
	}

	var resets int
	var reapplied applied
	cl2 := NewClient(ClientConfig{
		Primary: p.ts.URL, Tenant: "default", Dir: dir,
		Apply: reapplied.apply,
		Reset: func() error {
			resets++
			return os.RemoveAll(dir)
		},
		Cursor: rec.End, LastCRC: rec.LastCRC, Records: int64(rec.Records), Seeded: rec.Records > 0,
		Logf: t.Logf,
	})
	ctx2, cancel2 := context.WithCancel(context.Background())
	done2 := make(chan struct{})
	go func() { defer close(done2); _ = cl2.Run(ctx2) }()
	waitFor(t, "re-seeded catch-up", func() bool {
		lag, ok := cl2.Lag()
		return ok && lag == 0 && len(reapplied.snapshot()) >= 2
	})
	cancel2()
	<-done2

	if resets != 1 {
		t.Fatalf("%d re-seeds, want exactly 1", resets)
	}
	recs := reapplied.snapshot()
	if recs[0].Kind != wal.KindSnapshot || string(recs[0].Snapshot) != `{"seed":true}` {
		t.Fatalf("first applied record after re-seed = %+v, want the snapshot", recs[0])
	}
	if recs[1].Kind != wal.KindQuit || recs[1].Employee != 24 {
		t.Fatalf("post-snapshot tail = %+v, want quit 24", recs[1])
	}
	// The re-seeded mirror holds only retained history, byte for byte.
	srcRec, err := wal.Recover(p.dir)
	if err != nil {
		t.Fatal(err)
	}
	dstRec, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if dstRec.End != srcRec.End || dstRec.LastCRC != srcRec.LastCRC {
		t.Fatalf("re-seeded mirror end %v/%08x != source %v/%08x",
			dstRec.End, dstRec.LastCRC, srcRec.End, srcRec.LastCRC)
	}
	if dstRec.End.Seg < oldest.Seg {
		t.Fatalf("re-seeded mirror still holds pre-prune segment %d", dstRec.End.Seg)
	}
}

// TestClientReconnectsWithBackoff kills the primary's listener mid-stream and
// requires the client to reconnect on its own once a new listener serves the
// same journal, counting the reconnect in its metrics.
func TestClientReconnectsWithBackoff(t *testing.T) {
	p := newPrimary(t)
	p.append(quit(0))

	dir := t.TempDir()
	var got applied
	cl := NewClient(ClientConfig{
		Primary: p.ts.URL, Tenant: "default", Dir: dir,
		Apply:       got.apply,
		Reset:       func() error { t.Error("unexpected re-seed"); return nil },
		BackoffBase: time.Millisecond, BackoffCap: 10 * time.Millisecond,
		Logf: t.Logf,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = cl.Run(ctx) }()
	waitFor(t, "initial catch-up", func() bool { return len(got.snapshot()) == 1 })

	// Drop the listener. The journal stays open; the client must retry until
	// a replacement listener appears at the same address.
	addr := p.ts.Listener.Addr().String()
	p.ts.CloseClientConnections()
	p.ts.Close()
	p.append(quit(1))
	time.Sleep(20 * time.Millisecond) // let a few reconnect attempts fail

	ln, err := netListen(addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	ts2 := &httptest.Server{
		Listener: ln,
		Config: &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ServeStream(w, r, StreamConfig{Source: p.j, Heartbeat: 5 * time.Millisecond, Logf: t.Logf})
		})},
	}
	ts2.Start()
	defer ts2.Close()

	waitFor(t, "catch-up after reconnect", func() bool { return len(got.snapshot()) == 2 })
	cancel()
	<-done
}

// TestBackoffDeterministicWithSeed pins the reconnect jitter: a seeded client
// must produce a reproducible backoff sequence (the old code drew from the
// global math/rand, so drills could not replay a reconnect storm), and the
// jitter must stay within [d, 1.5d] of the exponential base.
func TestBackoffDeterministicWithSeed(t *testing.T) {
	mk := func(seed int64) *Client {
		return NewClient(ClientConfig{
			Primary: "http://127.0.0.1:0", Tenant: "default", Dir: t.TempDir(),
			Apply:       func(wal.Record, wal.Cursor) error { return nil },
			BackoffBase: 10 * time.Millisecond, BackoffCap: 500 * time.Millisecond,
			JitterSeed: seed,
		})
	}
	a, b := mk(42), mk(42)
	var seqA, seqB []time.Duration
	for attempt := 1; attempt <= 12; attempt++ {
		seqA = append(seqA, a.backoff(attempt))
		seqB = append(seqB, b.backoff(attempt))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("same seed diverged at attempt %d: %v != %v", i+1, seqA[i], seqB[i])
		}
	}
	for i, d := range seqA {
		base := 10 * time.Millisecond << min(i, 16)
		if base > 500*time.Millisecond || base <= 0 {
			base = 500 * time.Millisecond
		}
		if d < base || d > base+base/2 {
			t.Fatalf("attempt %d backoff %v outside [%v, %v]", i+1, d, base, base+base/2)
		}
	}
	c := mk(43)
	differs := false
	for attempt := 1; attempt <= 12; attempt++ {
		if c.backoff(attempt) != seqA[attempt-1] {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical jitter sequences")
	}
	// Unseeded clients self-seed (never the zero global-rand sequence twice).
	d1, d2 := NewClient(ClientConfig{
		Primary: "x", Tenant: "t1", Dir: t.TempDir(),
		Apply:       func(wal.Record, wal.Cursor) error { return nil },
		BackoffBase: 10 * time.Millisecond, BackoffCap: 500 * time.Millisecond,
	}), NewClient(ClientConfig{
		Primary: "x", Tenant: "t2", Dir: t.TempDir(),
		Apply:       func(wal.Record, wal.Cursor) error { return nil },
		BackoffBase: 10 * time.Millisecond, BackoffCap: 500 * time.Millisecond,
	})
	same := true
	for attempt := 1; attempt <= 12; attempt++ {
		if d1.backoff(attempt) != d2.backoff(attempt) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two unseeded clients produced identical jitter sequences")
	}
}

// TestStreamLeasePinsPruneForConnectedFollower is the tentpole's no-409
// guarantee: with a follower connected, the primary snapshots and prunes
// repeatedly while the journal rolls; the stream's retention lease must keep
// every still-unshipped segment on disk so the follower reaches lag 0 with
// zero re-seeds and a byte-identical mirror.
func TestStreamLeasePinsPruneForConnectedFollower(t *testing.T) {
	p := newPrimary(t)
	p.append(quit(0))

	dir := t.TempDir()
	var got applied
	cl := NewClient(ClientConfig{
		Primary: p.ts.URL, Tenant: "default", Dir: dir,
		Apply: got.apply,
		Reset: func() error { t.Error("re-seed under a live lease"); return nil },
		Logf:  t.Logf,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = cl.Run(ctx) }()
	waitFor(t, "stream connected", func() bool {
		_, ok := cl.Lag()
		return ok
	})
	waitFor(t, "lease registered", func() bool {
		_, held := p.j.LeaseFloor()
		return held
	})

	// Three compaction rounds against the live stream: roll several segments,
	// snapshot (which prunes), repeat. SegmentBytes=128 rolls every few
	// records.
	n := 1
	for round := 0; round < 3; round++ {
		for i := 0; i < 12; i++ {
			p.append(quit(n))
			n++
		}
		if err := p.j.Snapshot([]byte(`{"round":true}`)); err != nil {
			t.Fatal(err)
		}
	}
	// Lag alone can read 0 against a heartbeat from before the final round's
	// frames, so also require the mirror's cursor to reach the primary's end.
	end := p.j.DurableCursor()
	waitFor(t, "follower caught up through all prunes", func() bool {
		lag, ok := cl.Lag()
		return ok && lag == 0 && cl.State().Cursor == end
	})
	cancel()
	<-done

	// The mirror's tail is byte-identical to the primary's journal. Record
	// counts intentionally differ: the primary pruned its history while the
	// follower's mirror accumulates the full stream (followers do not prune;
	// see DESIGN.md).
	srcRec, err := wal.Recover(p.dir)
	if err != nil {
		t.Fatal(err)
	}
	dstRec, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if dstRec.End != srcRec.End || dstRec.LastCRC != srcRec.LastCRC {
		t.Fatalf("mirror recovery (%v %08x) != source (%v %08x)",
			dstRec.End, dstRec.LastCRC, srcRec.End, srcRec.LastCRC)
	}
	if dstRec.Records < srcRec.Records {
		t.Fatalf("mirror lost records: %d < retained %d", dstRec.Records, srcRec.Records)
	}

	// With the follower gone, the lease is released and the retained debt is
	// reclaimable again.
	waitFor(t, "lease released after disconnect", func() bool {
		_, held := p.j.LeaseFloor()
		return !held
	})
	if _, _, err := p.j.Prune(); err != nil {
		t.Fatal(err)
	}
	oldest, ok, err := wal.OldestCursor(p.dir)
	if err != nil || !ok {
		t.Fatalf("OldestCursor: %v ok=%v", err, ok)
	}
	if snapSeg := p.j.RetainStats().SnapshotSeg; oldest.Seg != snapSeg {
		t.Fatalf("post-release prune left oldest=%d, want snapshot seg %d", oldest.Seg, snapSeg)
	}
}
