package admit

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/obs"
)

// fakeClock is a manually advanced clock shared by a test and a Controller.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func admitNow(t *testing.T, c *Controller, tenant string) func() {
	t.Helper()
	release, err := c.Admit(context.Background(), tenant)
	if err != nil {
		t.Fatalf("Admit(%q): %v", tenant, err)
	}
	return release
}

func shedReason(t *testing.T, err error) *ShedError {
	t.Helper()
	var se *ShedError
	if !errors.As(err, &se) {
		t.Fatalf("want *ShedError, got %v", err)
	}
	return se
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config should not construct a controller")
	}
	if _, err := New(Config{Rate: -1}); err == nil {
		t.Fatal("negative rate should be rejected")
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config must report disabled")
	}
	if !(Config{MaxInflight: 4}).Enabled() {
		t.Fatal("inflight-only config must report enabled")
	}
}

func TestTokenBucketRateShed(t *testing.T) {
	clk := newFakeClock()
	c := mustNew(t, Config{Rate: 10, Burst: 2, Now: clk.Now})

	// Burst of 2 admits; the third is over rate.
	r1 := admitNow(t, c, "a")
	r2 := admitNow(t, c, "a")
	r1()
	r2()
	_, err := c.Admit(context.Background(), "a")
	se := shedReason(t, err)
	if se.Reason != ReasonRate {
		t.Fatalf("reason = %q, want %q", se.Reason, ReasonRate)
	}
	// Empty bucket at 10/s: one token is 100ms away.
	if se.RetryAfter != 100*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 100ms", se.RetryAfter)
	}

	// Half a token later the hint shrinks: the header is not a constant.
	clk.Advance(50 * time.Millisecond)
	_, err = c.Admit(context.Background(), "a")
	se2 := shedReason(t, err)
	if se2.RetryAfter != 50*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 50ms", se2.RetryAfter)
	}

	// A full refill admits again, and tenant b was never throttled.
	clk.Advance(100 * time.Millisecond)
	admitNow(t, c, "a")()
	admitNow(t, c, "b")()
}

func TestQueueGrantOnRelease(t *testing.T) {
	c := mustNew(t, Config{MaxInflight: 1, QueueDepth: 4})
	rA := admitNow(t, c, "a")

	got := make(chan struct{})
	go func() {
		r, err := c.Admit(context.Background(), "b")
		if err == nil {
			r()
		}
		close(got)
	}()
	waitQueued(t, c, 1)
	if s := c.Snapshot(); s.Inflight != 1 {
		t.Fatalf("inflight = %d, want 1", s.Inflight)
	}
	rA()
	<-got
	if s := c.Snapshot(); s.Inflight != 0 || s.Queued != 0 {
		t.Fatalf("after drain: %+v", s)
	}
}

// waitQueued polls until the queue depth reaches n (grants and enqueues
// happen on other goroutines).
func waitQueued(t *testing.T, c *Controller, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Snapshot().Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", n, c.Snapshot().Queued)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	c := mustNew(t, Config{MaxInflight: 1, QueueDepth: 16})
	hold := admitNow(t, c, "greedy")

	// Enqueue three greedy waiters, then one polite one. Enqueue order is
	// made deterministic by waiting for each to be queued before starting
	// the next.
	order := make(chan string, 4)
	enqueue := func(tenant, tag string, depth int) {
		go func() {
			r, err := c.Admit(context.Background(), tenant)
			if err != nil {
				order <- "shed:" + tag
				return
			}
			order <- tag
			r() // serialize: next grant happens only after this one finishes
		}()
		waitQueued(t, c, depth)
	}
	enqueue("greedy", "g1", 1)
	enqueue("greedy", "g2", 2)
	enqueue("greedy", "g3", 3)
	enqueue("polite", "p1", 4)

	hold()
	var got []string
	for i := 0; i < 4; i++ {
		got = append(got, <-order)
	}
	// Round-robin alternates tenants: polite is served second despite
	// three greedy requests queued ahead of it.
	want := []string{"g1", "p1", "g2", "g3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", got, want)
		}
	}
}

func TestTenantInflightCap(t *testing.T) {
	c := mustNew(t, Config{MaxInflight: 4, TenantInflight: 2, QueueDepth: 8})
	r1 := admitNow(t, c, "a")
	r2 := admitNow(t, c, "a")
	// Box has 2 free slots, but tenant a is at its cap: third request queues.
	done := make(chan error, 1)
	go func() {
		r, err := c.Admit(context.Background(), "a")
		if err == nil {
			defer r()
		}
		done <- err
	}()
	waitQueued(t, c, 1)
	// Another tenant still admits directly even with a's waiter queued.
	rb := admitNow(t, c, "b")
	rb()
	r1()
	if err := <-done; err != nil {
		t.Fatalf("queued request after release: %v", err)
	}
	r2()
}

func TestQueueFullShed(t *testing.T) {
	c := mustNew(t, Config{MaxInflight: 1, QueueDepth: 1})
	hold := admitNow(t, c, "a")
	go func() {
		r, err := c.Admit(context.Background(), "a")
		if err == nil {
			r()
		}
	}()
	waitQueued(t, c, 1)
	_, err := c.Admit(context.Background(), "a")
	if se := shedReason(t, err); se.Reason != ReasonQueueFull {
		t.Fatalf("reason = %q, want %q", se.Reason, ReasonQueueFull)
	}
	hold()
}

// TestQueueFullPushOut: a full queue is shared by longest-queue drop — an
// arrival from a short-queued tenant evicts the greedy tenant's newest
// waiter instead of being turned away.
func TestQueueFullPushOut(t *testing.T) {
	c := mustNew(t, Config{MaxInflight: 1, QueueDepth: 2})
	hold := admitNow(t, c, "greedy")

	// Fill the queue with two greedy waiters (deterministic order).
	outcome := make(chan string, 3)
	enqueue := func(tenant, tag string, depth int) {
		go func() {
			r, err := c.Admit(context.Background(), tenant)
			if err != nil {
				se := &ShedError{}
				if !errors.As(err, &se) || se.Reason != ReasonQueueFull {
					t.Errorf("%s: err = %v, want queue_full shed", tag, err)
				}
				outcome <- "shed:" + tag
				return
			}
			outcome <- "ok:" + tag
			r()
		}()
		waitQueued(t, c, depth)
	}
	enqueue("greedy", "g1", 1)
	enqueue("greedy", "g2", 2)

	// The queue is at depth. A polite arrival must push out g2 (the newest
	// waiter of the longest queue) and take its place.
	if got := <-runAdmit(c, "polite", outcome, "p1"); got != "shed:g2" {
		t.Fatalf("first outcome = %q, want the greedy tail pushed out (shed:g2)", got)
	}
	hold()
	if got := <-outcome; got != "ok:g1" {
		t.Fatalf("second outcome = %q, want ok:g1", got)
	}
	if got := <-outcome; got != "ok:p1" {
		t.Fatalf("third outcome = %q, want ok:p1", got)
	}

	// With only greedy queues at depth, a greedy arrival is itself shed:
	// a tenant cannot push out its own kind to jump the line.
	hold2 := admitNow(t, c, "greedy")
	g3 := make(chan string, 3)
	enqueue2 := func(tag string, depth int) {
		go func() {
			r, err := c.Admit(context.Background(), "greedy")
			if err != nil {
				g3 <- "shed:" + tag
				return
			}
			g3 <- "ok:" + tag
			r()
		}()
		waitQueued(t, c, depth)
	}
	enqueue2("h1", 1)
	enqueue2("h2", 2)
	if _, err := c.Admit(context.Background(), "greedy"); shedReason(t, err).Reason != ReasonQueueFull {
		t.Fatalf("greedy arrival into its own full queue: %v, want queue_full", err)
	}
	hold2()
	<-g3
	<-g3
}

// runAdmit starts an Admit on its own goroutine reporting into outcome, and
// returns outcome for the caller to read the first settled result.
func runAdmit(c *Controller, tenant string, outcome chan string, tag string) chan string {
	go func() {
		r, err := c.Admit(context.Background(), tenant)
		if err != nil {
			outcome <- "shed:" + tag
			return
		}
		outcome <- "ok:" + tag
		r()
	}()
	return outcome
}

func TestDeadlineProjectionShed(t *testing.T) {
	clk := newFakeClock()
	c := mustNew(t, Config{MaxInflight: 1, QueueDepth: 10, MaxWait: 100 * time.Millisecond, Now: clk.Now})

	// Cold controller: no completions observed yet, so the projection is
	// zero and the first over-capacity request queues rather than sheds.
	hold := admitNow(t, c, "a")
	granted := make(chan struct{})
	go func() {
		r, err := c.Admit(context.Background(), "b")
		if err == nil {
			r()
		}
		close(granted)
	}()
	waitQueued(t, c, 1)
	hold()
	<-granted

	// Two completions landed in a still-filling first window with no time
	// elapsed: the estimator divides by the minimum observation span, reads
	// a high rate, and keeps admitting.
	if rate := c.Snapshot().DrainRate; rate < 100 {
		t.Fatalf("cold-window drain rate = %v, want the 2 completions spread over the minimum span (200/s)", rate)
	}

	// A full window later the estimator is warm: drain rate is 2 per
	// half-second window = 4/s, so position 1 projects 250ms > MaxWait.
	clk.Advance(drainWindow)
	hold2 := admitNow(t, c, "a")
	_, err := c.Admit(context.Background(), "b")
	se := shedReason(t, err)
	if se.Reason != ReasonDeadline {
		t.Fatalf("reason = %q, want %q", se.Reason, ReasonDeadline)
	}
	if se.RetryAfter != 250*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 250ms (1 / 4 per second)", se.RetryAfter)
	}
	hold2()
}

func TestCancelWhileQueued(t *testing.T) {
	c := mustNew(t, Config{MaxInflight: 1, QueueDepth: 2})
	hold := admitNow(t, c, "a")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, "b")
		done <- err
	}()
	waitQueued(t, c, 1)
	cancel()
	if se := shedReason(t, <-done); se.Reason != ReasonCanceled {
		t.Fatalf("reason = %q, want %q", se.Reason, ReasonCanceled)
	}
	if s := c.Snapshot(); s.Queued != 0 {
		t.Fatalf("abandoned waiter still queued: %+v", s)
	}
	hold()
	admitNow(t, c, "b")()
}

func TestMaxWaitTimeoutWhileQueued(t *testing.T) {
	c := mustNew(t, Config{MaxInflight: 1, QueueDepth: 2, MaxWait: 20 * time.Millisecond})
	hold := admitNow(t, c, "a")
	_, err := c.Admit(context.Background(), "b")
	if se := shedReason(t, err); se.Reason != ReasonDeadline {
		t.Fatalf("reason = %q, want %q", se.Reason, ReasonDeadline)
	}
	hold()
}

func TestReleaseIdempotent(t *testing.T) {
	c := mustNew(t, Config{MaxInflight: 2})
	r := admitNow(t, c, "a")
	r()
	r() // must not double-free the slot
	if s := c.Snapshot(); s.Inflight != 0 {
		t.Fatalf("inflight = %d after double release", s.Inflight)
	}
}

func TestGateTableCapAndForget(t *testing.T) {
	clk := newFakeClock()
	c := mustNew(t, Config{Rate: 100, MaxTenants: 2, Now: clk.Now})
	for i := 0; i < 5; i++ {
		clk.Advance(time.Millisecond)
		admitNow(t, c, fmt.Sprintf("t%d", i))()
	}
	if s := c.Snapshot(); s.Tenants > 2 {
		t.Fatalf("gate table grew past cap: %d", s.Tenants)
	}
	admitNow(t, c, "keep")()
	c.Forget("keep")
	c.Forget("keep") // idempotent
}

func TestFormatRetryAfter(t *testing.T) {
	// RFC 9110 §10.2.3: Retry-After carries whole delta-seconds only.
	// Sub-second hints must round UP to "1", never render as decimals.
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{-time.Second, "1"},
		{50 * time.Millisecond, "1"},
		{250 * time.Millisecond, "1"},
		{999 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{30 * time.Second, "30"},
	}
	for _, tc := range cases {
		if got := FormatRetryAfter(tc.d); got != tc.want {
			t.Errorf("FormatRetryAfter(%v) = %q, want %q", tc.d, got, tc.want)
		}
		if strings.Contains(FormatRetryAfter(tc.d), ".") {
			t.Errorf("FormatRetryAfter(%v) = %q: decimal seconds are spec-invalid", tc.d, FormatRetryAfter(tc.d))
		}
	}
}

func TestFormatRetryAfterMs(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{-time.Second, "1"},
		{time.Microsecond, "1"},
		{50 * time.Millisecond, "50"},
		{250 * time.Millisecond, "250"},
		{250*time.Millisecond + time.Microsecond, "251"},
		{time.Second, "1000"},
		{30 * time.Second, "30000"},
	}
	for _, tc := range cases {
		if got := FormatRetryAfterMs(tc.d); got != tc.want {
			t.Errorf("FormatRetryAfterMs(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

func TestMetricsExported(t *testing.T) {
	reg := obs.NewRegistry()
	c := mustNew(t, Config{Rate: 1, Burst: 1, MaxInflight: 1, Metrics: reg})
	admitNow(t, c, "a")()
	if _, err := c.Admit(context.Background(), "a"); err == nil {
		t.Fatal("second over-rate admit should shed")
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{MetricAdmittedTotal, MetricShedTotal, MetricInflight} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics export missing %s:\n%s", want, out)
		}
	}
}

// TestAdmitStress hammers the controller from many goroutines with mixed
// cancellation, timeouts, and releases; the race detector and the final
// occupancy check are the assertions.
func TestAdmitStress(t *testing.T) {
	c := mustNew(t, Config{
		Rate: 50000, Burst: 1000,
		MaxInflight: 8, TenantInflight: 4,
		QueueDepth: 32, MaxWait: 5 * time.Millisecond,
	})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			tenant := fmt.Sprintf("t%d", w%5)
			for i := 0; i < 200; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if rng.Intn(4) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(3))*time.Millisecond)
				}
				release, err := c.Admit(ctx, tenant)
				if err == nil {
					if rng.Intn(8) == 0 {
						time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
					}
					release()
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()
	if s := c.Snapshot(); s.Inflight != 0 || s.Queued != 0 {
		t.Fatalf("leaked occupancy after stress: %+v", s)
	}
}
