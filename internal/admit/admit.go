// Package admit is the serving stack's admission-control layer. It decides,
// before any engine work happens, whether a request may run now, must wait
// in a bounded queue, or should be shed with a 503 and a computed
// Retry-After hint.
//
// The design mirrors the paper's core tension — a defender rationing a fixed
// audit budget across adversarial requests — at the systems layer: the box
// has a fixed solver/CPU budget, and under overload it must ration that
// budget across tenants instead of degrading everyone equally.
//
// Three mechanisms compose:
//
//   - Per-tenant token buckets bound each tenant's sustained admission rate
//     (Rate req/s, Burst depth). A tenant that exceeds its rate is shed
//     immediately with reason "rate" and a Retry-After equal to the time
//     until its bucket refills one token — so the hint varies with how far
//     over budget the tenant is, never a constant.
//
//   - A box-wide inflight cap (MaxInflight) with an optional per-tenant
//     concurrency cap (TenantInflight). When all slots are busy, requests
//     wait in a bounded FIFO queue per tenant; freed slots are granted
//     round-robin across tenants with non-empty queues, so a greedy tenant's
//     deep queue cannot starve a polite tenant's shallow one. The bound
//     (QueueDepth) is shared by longest-queue drop: an arrival that finds
//     the queue full pushes out the newest waiter of the longest queue, so
//     the backlog a greedy tenant built absorbs the drops and a tenant
//     asking for little always finds room.
//
//   - Deadline-aware shedding: the controller tracks the observed completion
//     rate over a short sliding window and projects how long a new arrival
//     would wait at the back of the queue. If the box is saturated (every
//     slot busy) and the projection exceeds MaxWait (typically the decision
//     deadline), the request is shed up front with reason "deadline" —
//     better an immediate 503 with an honest Retry-After than a slot wasted
//     on a request whose deadline the queue has already eaten. The
//     saturation guard matters: while slots are free the completion rate
//     measures offered load, not capacity, and shedding on it would
//     self-reinforce. Requests queued for other reasons (a tenant at its
//     concurrency cap) are instead bounded by the same MaxWait as an actual
//     timer.
//
// All methods are safe for concurrent use.
package admit

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"github.com/auditgames/sag/internal/obs"
)

// Metric names exported by the controller.
const (
	// MetricAdmittedTotal counts admitted requests, labeled by tenant and
	// by how they got in: reason="direct" (a slot was free) or "queued".
	MetricAdmittedTotal = "sag_admit_admitted_total"
	// MetricShedTotal counts rejected requests, labeled by tenant and
	// reason ("rate", "queue_full", "deadline", "canceled").
	MetricShedTotal = "sag_admit_shed_total"
	// MetricQueuedTotal counts requests that entered the admission queue.
	MetricQueuedTotal = "sag_admit_queued_total"
	// MetricQueueWaitSeconds is a histogram of time spent queued before
	// admission (sheds and cancellations are not observed here).
	MetricQueueWaitSeconds = "sag_admit_queue_wait_seconds"
	// MetricInflight / MetricQueueDepth are gauges of current occupancy.
	MetricInflight   = "sag_admit_inflight"
	MetricQueueDepth = "sag_admit_queue_depth"
)

// Shed reasons, also used as the reason label on MetricShedTotal.
const (
	// ReasonRate: the tenant's token bucket was empty.
	ReasonRate = "rate"
	// ReasonQueueFull: the box-wide admission queue was at QueueDepth.
	ReasonQueueFull = "queue_full"
	// ReasonDeadline: the projected (or actual) queue wait exceeded MaxWait.
	ReasonDeadline = "deadline"
	// ReasonCanceled: the caller's context ended while queued.
	ReasonCanceled = "canceled"
)

// Admitted reasons on MetricAdmittedTotal.
const (
	reasonDirect = "direct"
	reasonQueued = "queued"
)

// drainWindow is the width of each half of the sliding window the
// completion-rate estimator maintains. Two halves give a smoothed rate over
// the last ~0.5–1s without storing per-completion timestamps.
const drainWindow = 500 * time.Millisecond

// maxRetryAfter caps every computed hint: past this the honest answer is
// "much later", and a bounded hint keeps well-behaved clients from parking
// for minutes on one bad projection.
const maxRetryAfter = 30 * time.Second

// minObsWindow floors the observation span the estimator divides by while
// its first window is still filling, so a lone early completion cannot read
// as an astronomically high (or, divided by the full window, low) rate.
const minObsWindow = 10 * time.Millisecond

// Config parameterizes a Controller. The zero value disables admission
// control entirely (Enabled returns false); servers treat that as "admit
// everything", preserving pre-admission behavior.
type Config struct {
	// Rate is each tenant's sustained admission rate in requests/second.
	// 0 disables rate limiting.
	Rate float64
	// Burst is the token-bucket depth (maximum momentary excursion above
	// Rate). 0 defaults to max(1, Rate).
	Burst float64
	// MaxInflight bounds concurrently admitted requests box-wide.
	// 0 disables the inflight cap and the queue.
	MaxInflight int
	// TenantInflight bounds one tenant's share of MaxInflight. 0 defaults
	// to MaxInflight (no per-tenant cap below the box cap).
	TenantInflight int
	// QueueDepth bounds the box-wide admission queue. 0 means no queue:
	// a request that cannot run immediately is shed.
	QueueDepth int
	// MaxWait bounds both the projected and the actual time a request may
	// spend queued; beyond it the request is shed with ReasonDeadline.
	// 0 disables deadline shedding (requests wait until granted or
	// canceled).
	MaxWait time.Duration
	// MaxTenants caps the tenant-gate table. At the cap, creating a gate
	// for a new tenant evicts the longest-idle gate with no inflight or
	// queued requests. 0 means unlimited.
	MaxTenants int
	// Now overrides the clock (tests). Nil means time.Now.
	Now func() time.Time
	// Metrics receives the sag_admit_* series. Nil disables metrics.
	Metrics *obs.Registry
}

// Enabled reports whether this configuration imposes any admission policy.
func (c Config) Enabled() bool {
	return c.Rate > 0 || c.MaxInflight > 0 || c.TenantInflight > 0
}

// ShedError is returned by Admit when a request is rejected. RetryAfter is
// the computed backoff hint (already capped; always > 0).
type ShedError struct {
	Tenant     string
	Reason     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admit: tenant %q shed (%s), retry after %v", e.Tenant, e.Reason, e.RetryAfter)
}

// FormatRetryAfter renders a hint for a Retry-After header. RFC 9110 §10.2.3
// allows only non-negative integral delta-seconds (or an HTTP-date), so every
// hint is rounded up to whole seconds with a floor of "1" — a decimal like
// "0.25" is spec-invalid and strict proxies and clients reject or misparse
// it. Clients wanting sub-second precision read X-SAG-Retry-After-Ms (see
// FormatRetryAfterMs), which carries the same hint in integral milliseconds.
func FormatRetryAfter(d time.Duration) string {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return strconv.Itoa(s)
}

// FormatRetryAfterMs renders a hint for the X-SAG-Retry-After-Ms header:
// integral milliseconds, rounded up, floored at 1. The companion to
// FormatRetryAfter — Retry-After stays spec-valid coarse seconds while this
// header preserves the precision a 50ms backlog deserves (rounding it up to
// "1" second would tell clients to wait 20× longer than needed).
func FormatRetryAfterMs(d time.Duration) string {
	ms := (d + time.Millisecond - 1) / time.Millisecond
	if ms < 1 {
		ms = 1
	}
	return strconv.FormatInt(int64(ms), 10)
}

// waiter is one queued request.
type waiter struct {
	g     *gate
	ready chan struct{} // closed by grantLocked or a push-out eviction
	enq   time.Time

	// granted is set (under Controller.mu) when a slot has been assigned.
	// A canceled waiter that lost this race must give the slot back.
	granted bool
	// err is set (under Controller.mu) when the waiter was pushed out of a
	// full queue to make room for a tenant with a shorter one.
	err *ShedError
}

// gate is the per-tenant admission state. All fields are guarded by
// Controller.mu; the metric instruments are pre-resolved and internally
// atomic.
type gate struct {
	id       string
	tokens   float64
	refilled time.Time // last token-bucket refill
	inflight int
	queue    []*waiter
	inRR     bool
	idleAt   time.Time // last transition to fully idle (eviction order)

	admittedDirect *obs.Counter
	admittedQueued *obs.Counter
	queuedTotal    *obs.Counter
	shed           map[string]*obs.Counter
}

// Controller is the admission-control state machine. Create with New.
type Controller struct {
	cfg Config
	now func() time.Time

	queueWait *obs.Histogram
	inflightG *obs.Gauge
	queuedG   *obs.Gauge

	mu       sync.Mutex
	gates    map[string]*gate
	rr       []*gate // gates with non-empty queues, in round-robin order
	rrIdx    int
	inflight int
	queued   int

	// Completion-rate estimator: two-bucket sliding window. winFull marks
	// that a full window preceded the current one, making prevCount a real
	// measurement rather than a cold start.
	winStart    time.Time
	winCount    int
	prevCount   int
	winFull     bool
	everDrained bool
}

// New validates cfg and returns a Controller. It errors if cfg.Enabled() is
// false or any knob is negative.
func New(cfg Config) (*Controller, error) {
	if !cfg.Enabled() {
		return nil, errors.New("admit: config enables no admission policy (set Rate or MaxInflight)")
	}
	if cfg.Rate < 0 || cfg.Burst < 0 || cfg.MaxInflight < 0 || cfg.TenantInflight < 0 || cfg.QueueDepth < 0 || cfg.MaxWait < 0 || cfg.MaxTenants < 0 {
		return nil, errors.New("admit: negative knob in config")
	}
	if cfg.Rate > 0 && cfg.Burst == 0 {
		cfg.Burst = math.Max(1, cfg.Rate)
	}
	if cfg.MaxInflight > 0 && (cfg.TenantInflight == 0 || cfg.TenantInflight > cfg.MaxInflight) {
		cfg.TenantInflight = cfg.MaxInflight
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Controller{
		cfg:   cfg,
		now:   cfg.Now,
		gates: make(map[string]*gate),
	}
	if reg := cfg.Metrics; reg != nil {
		c.queueWait = reg.Histogram(MetricQueueWaitSeconds,
			"Time spent in the admission queue before a slot was granted.", obs.DefWaitBuckets)
		c.inflightG = reg.Gauge(MetricInflight, "Requests currently admitted and running.")
		c.queuedG = reg.Gauge(MetricQueueDepth, "Requests currently waiting in the admission queue.")
	}
	return c, nil
}

// Admit asks to run one request for tenant. On admission it returns a
// release function that MUST be called exactly once when the request
// finishes (it frees the slot and feeds the drain-rate estimator; it is
// idempotent as a safety net). On rejection it returns a *ShedError with
// the reason and a computed Retry-After.
//
// Admit blocks only when the request is queued, and then only up to
// cfg.MaxWait (if set) or until ctx is done.
func (c *Controller) Admit(ctx context.Context, tenant string) (release func(), err error) {
	c.mu.Lock()
	now := c.now()
	g := c.gateLocked(tenant, now)

	// Stage 1: per-tenant token bucket.
	if c.cfg.Rate > 0 {
		g.refill(now, c.cfg.Rate, c.cfg.Burst)
		if g.tokens < 1 {
			// Time until one full token accrues.
			ra := time.Duration((1 - g.tokens) / c.cfg.Rate * float64(time.Second))
			err := c.shedLocked(g, ReasonRate, ra)
			c.mu.Unlock()
			return nil, err
		}
		g.tokens--
	}

	// Stage 2: direct admission — a slot is free, nobody is queued ahead,
	// and the tenant is under its concurrency share.
	if c.slotFreeLocked() && c.queued == 0 && c.underCapLocked(g) {
		c.inflight++
		g.inflight++
		c.inflightG.Set(float64(c.inflight))
		g.admittedDirect.Inc()
		c.mu.Unlock()
		return c.releaseFunc(g), nil
	}

	// Stage 3: queue, or shed. A full queue is shared fairly by push-out:
	// the arrival evicts the newest waiter of the longest queue, so a
	// greedy tenant's backlog absorbs the drops and can never wall off the
	// queue from tenants asking for little. Only when the arriving tenant
	// itself owns (or ties) the longest queue is the arrival the one shed.
	if c.cfg.QueueDepth <= 0 {
		err := c.shedLocked(g, ReasonQueueFull, c.projectedWaitLocked(now, c.queued+1))
		c.mu.Unlock()
		return nil, err
	}
	if c.queued >= c.cfg.QueueDepth && !c.pushOutLocked(g, now) {
		err := c.shedLocked(g, ReasonQueueFull, c.projectedWaitLocked(now, c.queued+1))
		c.mu.Unlock()
		return nil, err
	}
	// Project-and-shed only when every slot is busy. Only then does the
	// observed completion rate measure capacity, making the projection
	// honest. With free slots the rate reflects whatever admission happens
	// to be letting through, and shedding on it would spiral: sheds
	// suppress completions, the lowered rate projects longer waits, which
	// sheds more. A request blocked only by its tenant's concurrency cap
	// queues instead — its grant arrives with the tenant's own next
	// release, and the MaxWait timer below bounds the wait regardless.
	if !c.slotFreeLocked() {
		if proj := c.projectedWaitLocked(now, c.queued+1); c.cfg.MaxWait > 0 && proj > c.cfg.MaxWait {
			err := c.shedLocked(g, ReasonDeadline, proj)
			c.mu.Unlock()
			return nil, err
		}
	}
	w := &waiter{g: g, ready: make(chan struct{}), enq: now}
	g.queue = append(g.queue, w)
	if !g.inRR {
		c.rr = append(c.rr, g)
		g.inRR = true
	}
	c.queued++
	c.queuedG.Set(float64(c.queued))
	g.queuedTotal.Inc()
	// Grant immediately if a slot is actually available to some queued
	// tenant: the direct path above refuses to jump an existing queue, but
	// a waiter held back only by its tenant's concurrency cap must not
	// block other tenants' arrivals from using free slots.
	c.grantLocked()
	c.mu.Unlock()

	var timeout <-chan time.Time
	if c.cfg.MaxWait > 0 {
		tm := time.NewTimer(c.cfg.MaxWait)
		defer tm.Stop()
		timeout = tm.C
	}
	select {
	case <-w.ready:
		c.mu.Lock()
		if w.err != nil {
			// Pushed out of the full queue by a shorter-queued tenant;
			// the eviction already recorded the shed.
			c.mu.Unlock()
			return nil, w.err
		}
		wait := c.now().Sub(w.enq)
		c.queueWait.Observe(wait.Seconds())
		g.admittedQueued.Inc()
		c.mu.Unlock()
		return c.releaseFunc(g), nil
	case <-ctx.Done():
		return nil, c.abandon(w, ReasonCanceled)
	case <-timeout:
		return nil, c.abandon(w, ReasonDeadline)
	}
}

// abandon removes a waiter that stopped waiting (cancellation or deadline).
// If a grant raced the abandonment, the already-assigned slot is returned
// and re-granted to the next waiter; if a push-out eviction raced it, the
// eviction already settled the waiter's fate.
func (c *Controller) abandon(w *waiter, reason string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	switch {
	case w.err != nil:
		return w.err
	case w.granted:
		c.inflight--
		w.g.inflight--
		c.noteIdleLocked(w.g, now)
		c.grantLocked()
	default:
		c.removeWaiterLocked(w)
	}
	return c.shedLocked(w.g, reason, c.projectedWaitLocked(now, c.queued+1))
}

// Release-side plumbing. The returned closure is what handlers defer.
func (c *Controller) releaseFunc(g *gate) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			now := c.now()
			c.inflight--
			g.inflight--
			c.rotateLocked(now)
			c.winCount++
			c.everDrained = true
			c.noteIdleLocked(g, now)
			c.grantLocked()
			c.inflightG.Set(float64(c.inflight))
			c.mu.Unlock()
		})
	}
}

// RetryHint returns a backoff hint for overload responses produced outside
// the controller (drains, standby 503s): the projected wait for a new
// arrival, floored at one second so generic hints never read as "now".
func (c *Controller) RetryHint() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.projectedWaitLocked(c.now(), c.queued+1)
	if d < time.Second {
		d = time.Second
	}
	return d
}

// Forget drops tenant's gate if it is fully idle. Servers call it when a
// tenant is evicted so the gate table tracks the resident tenant set.
func (c *Controller) Forget(tenant string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if g, ok := c.gates[tenant]; ok && g.inflight == 0 && len(g.queue) == 0 {
		delete(c.gates, tenant)
	}
}

// Stats is a point-in-time snapshot for tests and debugging.
type Stats struct {
	Inflight  int
	Queued    int
	Tenants   int
	DrainRate float64 // completions/second over the sliding window
}

// Snapshot returns current occupancy.
func (c *Controller) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Inflight:  c.inflight,
		Queued:    c.queued,
		Tenants:   len(c.gates),
		DrainRate: c.drainRateLocked(c.now()),
	}
}

func (c *Controller) slotFreeLocked() bool {
	return c.cfg.MaxInflight <= 0 || c.inflight < c.cfg.MaxInflight
}

func (c *Controller) underCapLocked(g *gate) bool {
	return c.cfg.TenantInflight <= 0 || g.inflight < c.cfg.TenantInflight
}

// noteIdleLocked records the moment a gate went fully idle, for eviction
// ordering in gateLocked.
func (c *Controller) noteIdleLocked(g *gate, now time.Time) {
	if g.inflight == 0 && len(g.queue) == 0 {
		g.idleAt = now
	}
}

// gateLocked returns tenant's gate, creating it on first use. At the
// MaxTenants cap the longest-idle gate is evicted; if every gate is busy
// the table grows past the cap rather than rejecting the tenant (the
// resident-tenant cap in shard is the real limit — this one only bounds
// bookkeeping).
func (c *Controller) gateLocked(tenant string, now time.Time) *gate {
	if g, ok := c.gates[tenant]; ok {
		return g
	}
	if c.cfg.MaxTenants > 0 && len(c.gates) >= c.cfg.MaxTenants {
		var victim *gate
		for _, g := range c.gates {
			if g.inflight != 0 || len(g.queue) != 0 {
				continue
			}
			if victim == nil || g.idleAt.Before(victim.idleAt) {
				victim = g
			}
		}
		if victim != nil {
			delete(c.gates, victim.id)
		}
	}
	g := &gate{id: tenant, tokens: c.cfg.Burst, refilled: now, idleAt: now}
	if reg := c.cfg.Metrics; reg != nil {
		lt := obs.L("tenant", tenant)
		g.admittedDirect = reg.Counter(MetricAdmittedTotal,
			"Requests admitted, by tenant and admission path.", lt, obs.L("reason", reasonDirect))
		g.admittedQueued = reg.Counter(MetricAdmittedTotal, "", lt, obs.L("reason", reasonQueued))
		g.queuedTotal = reg.Counter(MetricQueuedTotal,
			"Requests that entered the admission queue, by tenant.", lt)
		g.shed = map[string]*obs.Counter{
			ReasonRate:      reg.Counter(MetricShedTotal, "Requests shed, by tenant and reason.", lt, obs.L("reason", ReasonRate)),
			ReasonQueueFull: reg.Counter(MetricShedTotal, "", lt, obs.L("reason", ReasonQueueFull)),
			ReasonDeadline:  reg.Counter(MetricShedTotal, "", lt, obs.L("reason", ReasonDeadline)),
			ReasonCanceled:  reg.Counter(MetricShedTotal, "", lt, obs.L("reason", ReasonCanceled)),
		}
	}
	c.gates[tenant] = g
	return g
}

// refill accrues tokens since the last refill, capped at burst.
func (g *gate) refill(now time.Time, rate, burst float64) {
	if el := now.Sub(g.refilled); el > 0 {
		g.tokens = math.Min(burst, g.tokens+el.Seconds()*rate)
	}
	g.refilled = now
}

// shedLocked records a rejection and builds its error. RetryAfter is
// clamped to (0, maxRetryAfter].
func (c *Controller) shedLocked(g *gate, reason string, ra time.Duration) *ShedError {
	if ra <= 0 {
		ra = 10 * time.Millisecond
	}
	if ra > maxRetryAfter {
		ra = maxRetryAfter
	}
	if g.shed != nil {
		g.shed[reason].Inc()
	}
	return &ShedError{Tenant: g.id, Reason: reason, RetryAfter: ra}
}

// grantLocked hands freed slots to queued waiters, round-robin across
// tenants, skipping tenants at their concurrency cap. It stops when slots
// run out, the queues drain, or every queued tenant is capped.
func (c *Controller) grantLocked() {
	for c.slotFreeLocked() && len(c.rr) > 0 {
		granted := false
		for tries := len(c.rr); tries > 0; tries-- {
			if c.rrIdx >= len(c.rr) {
				c.rrIdx = 0
			}
			g := c.rr[c.rrIdx]
			if !c.underCapLocked(g) {
				c.rrIdx++
				continue
			}
			w := g.queue[0]
			g.queue = g.queue[1:]
			c.queued--
			if len(g.queue) == 0 {
				c.removeFromRRLocked(c.rrIdx)
			} else {
				c.rrIdx++
			}
			c.inflight++
			g.inflight++
			w.granted = true
			close(w.ready)
			granted = true
			break
		}
		if !granted {
			break
		}
	}
	c.inflightG.Set(float64(c.inflight))
	c.queuedG.Set(float64(c.queued))
}

// pushOutLocked makes room in a full queue for an arrival from gate g by
// evicting the newest waiter of the longest queue (longest-queue drop, the
// classic fair buffer-sharing policy). It returns false — shed the arrival
// instead — when g itself owns or ties the longest queue, so a tenant can
// never push out its own kind to jump ahead, and tenants with short queues
// always find room.
func (c *Controller) pushOutLocked(g *gate, now time.Time) bool {
	var victim *gate
	for _, cand := range c.rr {
		if victim == nil || len(cand.queue) > len(victim.queue) {
			victim = cand
		}
	}
	if victim == nil || len(victim.queue) <= len(g.queue) {
		return false
	}
	w := victim.queue[len(victim.queue)-1]
	victim.queue = victim.queue[:len(victim.queue)-1]
	c.queued--
	if len(victim.queue) == 0 && victim.inRR {
		for i, rg := range c.rr {
			if rg == victim {
				c.removeFromRRLocked(i)
				break
			}
		}
	}
	c.noteIdleLocked(victim, now)
	w.err = c.shedLocked(victim, ReasonQueueFull, c.projectedWaitLocked(now, c.queued+1))
	close(w.ready)
	c.queuedG.Set(float64(c.queued))
	return true
}

// removeWaiterLocked unlinks an abandoned waiter from its gate's queue.
func (c *Controller) removeWaiterLocked(w *waiter) {
	q := w.g.queue
	for i, x := range q {
		if x == w {
			w.g.queue = append(q[:i], q[i+1:]...)
			c.queued--
			c.queuedG.Set(float64(c.queued))
			break
		}
	}
	if len(w.g.queue) == 0 && w.g.inRR {
		for i, g := range c.rr {
			if g == w.g {
				c.removeFromRRLocked(i)
				break
			}
		}
	}
	c.noteIdleLocked(w.g, c.now())
}

// removeFromRRLocked drops rr[i], keeping rrIdx pointing at the element
// that followed it.
func (c *Controller) removeFromRRLocked(i int) {
	g := c.rr[i]
	g.inRR = false
	c.rr = append(c.rr[:i], c.rr[i+1:]...)
	if c.rrIdx > i {
		c.rrIdx--
	}
	if c.rrIdx >= len(c.rr) {
		c.rrIdx = 0
	}
}

// rotateLocked advances the sliding window so winCount covers at most
// drainWindow of history and prevCount the drainWindow before it.
func (c *Controller) rotateLocked(now time.Time) {
	if c.winStart.IsZero() {
		c.winStart = now
		return
	}
	el := now.Sub(c.winStart)
	switch {
	case el < drainWindow:
	case el < 2*drainWindow:
		c.prevCount = c.winCount
		c.winCount = 0
		c.winStart = c.winStart.Add(drainWindow)
		c.winFull = true
	default:
		// More than a full window of silence: the estimator restarts cold.
		c.prevCount = 0
		c.winCount = 0
		c.winStart = now
		c.winFull = false
	}
}

// drainRateLocked estimates completions/second: the current window's count
// plus the previous window's, weighted by how much of it is still inside
// the last drainWindow of wall time. While the first window since start (or
// since an idle reset) is still filling there is no previous window to lean
// on, so the count is divided by the time actually observed — dividing by
// the full window there would underestimate the rate by up to 50× and shed
// traffic a freshly loaded box is in fact absorbing.
func (c *Controller) drainRateLocked(now time.Time) float64 {
	c.rotateLocked(now)
	if c.winStart.IsZero() {
		return 0
	}
	el := now.Sub(c.winStart)
	if !c.winFull {
		obs := el
		if obs < minObsWindow {
			obs = minObsWindow
		}
		return float64(c.winCount) / obs.Seconds()
	}
	frac := el.Seconds() / drainWindow.Seconds()
	if frac > 1 {
		frac = 1
	} else if frac < 0 {
		frac = 0
	}
	n := float64(c.prevCount)*(1-frac) + float64(c.winCount)
	return n / drainWindow.Seconds()
}

// projectedWaitLocked estimates how long the request at queue position pos
// (1-based) would wait, from the observed drain rate. Before any completion
// has ever been observed the projection is zero — a cold controller has no
// evidence of slowness and must not shed its very first burst. A rate of
// zero after completions have been seen means the pipeline is stalled, which
// projects the maximum.
func (c *Controller) projectedWaitLocked(now time.Time, pos int) time.Duration {
	rate := c.drainRateLocked(now)
	if rate <= 0 {
		if !c.everDrained {
			return 0
		}
		return maxRetryAfter
	}
	d := time.Duration(float64(pos) / rate * float64(time.Second))
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d
}
