package lp

import (
	"math"
	"testing"
)

func TestDualSimpleBudget(t *testing.T) {
	// max x s.t. x <= 4: dual of the budget row is 1.
	p := New(Maximize, 1)
	_ = p.SetObjective([]float64{1})
	mustAdd(t, p, []float64{1}, LE, 4)
	sol := solveOK(t, p)
	if len(sol.Duals) != 1 || math.Abs(sol.Duals[0]-1) > 1e-9 {
		t.Fatalf("duals = %v, want [1]", sol.Duals)
	}
}

func TestDualNonBindingIsZero(t *testing.T) {
	// max x s.t. x <= 4, x <= 10: the loose row has zero price.
	p := New(Maximize, 1)
	_ = p.SetObjective([]float64{1})
	mustAdd(t, p, []float64{1}, LE, 4)
	mustAdd(t, p, []float64{1}, LE, 10)
	sol := solveOK(t, p)
	if math.Abs(sol.Duals[0]-1) > 1e-9 || math.Abs(sol.Duals[1]) > 1e-9 {
		t.Fatalf("duals = %v, want [1 0]", sol.Duals)
	}
}

func TestDualClassic2D(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
	// Optimum (2,6): binding rows 2 and 3; known duals (0, 1.5, 1).
	p := New(Maximize, 2)
	_ = p.SetObjective([]float64{3, 5})
	mustAdd(t, p, []float64{1, 0}, LE, 4)
	mustAdd(t, p, []float64{0, 2}, LE, 12)
	mustAdd(t, p, []float64{3, 2}, LE, 18)
	sol := solveOK(t, p)
	want := []float64{0, 1.5, 1}
	for i := range want {
		if math.Abs(sol.Duals[i]-want[i]) > 1e-9 {
			t.Fatalf("duals = %v, want %v", sol.Duals, want)
		}
	}
	// Strong duality: y·b equals the optimum.
	yb := sol.Duals[0]*4 + sol.Duals[1]*12 + sol.Duals[2]*18
	if math.Abs(yb-sol.Objective) > 1e-9 {
		t.Fatalf("y·b = %g, objective = %g", yb, sol.Objective)
	}
}

func TestDualMinimizationGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10 (x,y >= 0): optimum 20 at (10,0); the
	// covering row's dual is 2 (cost of one more unit of demand).
	p := New(Minimize, 2)
	_ = p.SetObjective([]float64{2, 3})
	mustAdd(t, p, []float64{1, 1}, GE, 10)
	sol := solveOK(t, p)
	if math.Abs(sol.Duals[0]-2) > 1e-9 {
		t.Fatalf("dual = %v, want 2", sol.Duals)
	}
}

func TestDualEqualityRow(t *testing.T) {
	// min x + 4y s.t. x + y = 5 (x,y ≥ 0): optimum x=5, dual = 1.
	p := New(Minimize, 2)
	_ = p.SetObjective([]float64{1, 4})
	mustAdd(t, p, []float64{1, 1}, EQ, 5)
	sol := solveOK(t, p)
	if math.Abs(sol.Duals[0]-1) > 1e-9 {
		t.Fatalf("dual = %v, want 1", sol.Duals)
	}
}

func TestDualNegativeRHSNormalization(t *testing.T) {
	// min x s.t. -x <= -3 (i.e. x >= 3): dual of the row as *written*:
	// d(obj)/d(rhs) with rhs = -3; relaxing rhs to -2 gives x >= 2 →
	// objective 2, so the derivative is +... obj(rhs) = -rhs → dual = -1.
	p := New(Minimize, 1)
	_ = p.SetObjective([]float64{1})
	mustAdd(t, p, []float64{-1}, LE, -3)
	sol := solveOK(t, p)
	if math.Abs(sol.Duals[0]-(-1)) > 1e-9 {
		t.Fatalf("dual = %v, want -1", sol.Duals)
	}
}

func TestDualsMatchFiniteDifference(t *testing.T) {
	// Perturb each rhs of a random-but-fixed LP and compare the dual to
	// the finite-difference objective change.
	build := func(b []float64) *Problem {
		p := New(Maximize, 3)
		_ = p.SetObjective([]float64{2, 3, 1})
		for i := 0; i < 3; i++ {
			_ = p.SetBounds(i, 0, 100)
		}
		mustAddT(p, []float64{1, 1, 1}, LE, b[0])
		mustAddT(p, []float64{2, 1, 0}, LE, b[1])
		mustAddT(p, []float64{0, 1, 3}, LE, b[2])
		return p
	}
	base := []float64{10, 12, 15}
	sol := MustSolve(build(base))
	const h = 1e-4
	for i := range base {
		bumped := append([]float64(nil), base...)
		bumped[i] += h
		solUp := MustSolve(build(bumped))
		fd := (solUp.Objective - sol.Objective) / h
		if math.Abs(fd-sol.Duals[i]) > 1e-5 {
			t.Fatalf("row %d: dual %g vs finite difference %g", i, sol.Duals[i], fd)
		}
	}
}

// mustAddT is mustAdd without a *testing.T (used inside closures).
func mustAddT(p *Problem, c []float64, rel Rel, rhs float64) {
	if err := p.AddConstraint(c, rel, rhs); err != nil {
		panic(err)
	}
}

func TestDualsSignalingBudgetValue(t *testing.T) {
	// Domain check: in the audit allocation LP, the budget row's dual is
	// the marginal value of one more audit unit — positive while coverage
	// is scarce.
	p := New(Maximize, 1)
	_ = p.SetObjective([]float64{500.0 / 196.57}) // dU/dB for type 1 at λ=196.57 (approx)
	_ = p.SetBounds(0, 0, 196.57)
	mustAdd(t, p, []float64{1}, LE, 20)
	sol := solveOK(t, p)
	if sol.Duals[0] <= 0 {
		t.Fatalf("budget shadow price %g should be positive under scarcity", sol.Duals[0])
	}
}
