package lp

import (
	"math"
	"testing"
	"testing/quick"
)

// propertyConfig bounds the random case count so `go test` stays fast while
// still exercising hundreds of random programs across the properties below.
var propertyConfig = &quick.Config{MaxCount: 150}

// boxLP describes a randomized "box + budget" LP used by the quick
// properties: maximize c·x subject to x ∈ [0, u] and Σ x_i ≤ s. This family
// always has a known optimum computable by a greedy argument, so it checks
// the solver against an independent oracle.
type boxLP struct {
	C [4]float64
	U [4]float64
	S float64
}

func (b boxLP) normalized() boxLP {
	for i := range b.U {
		b.U[i] = math.Mod(math.Abs(b.U[i]), 5) // u ∈ [0,5)
		b.C[i] = math.Mod(b.C[i], 7)           // c ∈ (-7,7)
		if math.IsNaN(b.U[i]) || math.IsNaN(b.C[i]) {
			b.U[i], b.C[i] = 1, 1
		}
	}
	b.S = math.Mod(math.Abs(b.S), 12)
	if math.IsNaN(b.S) {
		b.S = 1
	}
	return b
}

// greedyOptimum solves the box+budget LP exactly: fill variables in
// decreasing positive cost order until the budget s is exhausted.
func (b boxLP) greedyOptimum() float64 {
	type item struct{ c, u float64 }
	items := make([]item, 0, 4)
	for i := range b.C {
		if b.C[i] > 0 {
			items = append(items, item{b.C[i], b.U[i]})
		}
	}
	// Insertion sort by cost descending (4 items max).
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].c > items[j-1].c; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	left := b.S
	total := 0.0
	for _, it := range items {
		take := math.Min(it.u, left)
		total += it.c * take
		left -= take
		if left <= 0 {
			break
		}
	}
	return total
}

func (b boxLP) problem() *Problem {
	p := New(Maximize, 4)
	_ = p.SetObjective(b.C[:])
	for i := range b.U {
		_ = p.SetBounds(i, 0, b.U[i])
	}
	_ = p.AddConstraint([]float64{1, 1, 1, 1}, LE, b.S)
	return p
}

// TestQuickBoxBudgetMatchesGreedy checks the solver against the greedy
// closed form on the box+budget family.
func TestQuickBoxBudgetMatchesGreedy(t *testing.T) {
	prop := func(raw boxLP) bool {
		b := raw.normalized()
		sol, err := Solve(b.problem())
		if err != nil || sol.Status != Optimal {
			return false
		}
		return math.Abs(sol.Objective-b.greedyOptimum()) < 1e-6
	}
	if err := quick.Check(prop, propertyConfig); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSolutionsAreFeasible checks that every optimal solution returned
// on the random family satisfies its own constraints.
func TestQuickSolutionsAreFeasible(t *testing.T) {
	prop := func(raw boxLP) bool {
		b := raw.normalized()
		p := b.problem()
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		v, err := p.Violation(sol.X)
		return err == nil && v < 1e-6
	}
	if err := quick.Check(prop, propertyConfig); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScaleInvariance checks that scaling the objective by a positive
// constant scales the optimum by the same constant (a basic LP invariant
// that catches sign and normalization bugs).
func TestQuickScaleInvariance(t *testing.T) {
	prop := func(raw boxLP, rawScale float64) bool {
		b := raw.normalized()
		scale := 0.5 + math.Mod(math.Abs(rawScale), 4)
		if math.IsNaN(scale) {
			scale = 2
		}
		sol1, err1 := Solve(b.problem())
		scaled := b
		for i := range scaled.C {
			scaled.C[i] *= scale
		}
		sol2, err2 := Solve(scaled.problem())
		if err1 != nil || err2 != nil || sol1.Status != Optimal || sol2.Status != Optimal {
			return false
		}
		return math.Abs(sol2.Objective-scale*sol1.Objective) < 1e-5*(1+math.Abs(sol1.Objective))
	}
	if err := quick.Check(prop, propertyConfig); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTighterBudgetNeverHelps checks monotonicity: shrinking the shared
// budget can never increase the maximum.
func TestQuickTighterBudgetNeverHelps(t *testing.T) {
	prop := func(raw boxLP) bool {
		b := raw.normalized()
		tight := b
		tight.S = b.S / 2
		solLoose, err1 := Solve(b.problem())
		solTight, err2 := Solve(tight.problem())
		if err1 != nil || err2 != nil || solLoose.Status != Optimal || solTight.Status != Optimal {
			return false
		}
		return solTight.Objective <= solLoose.Objective+1e-7
	}
	if err := quick.Check(prop, propertyConfig); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDualityGapOnKnapsack checks weak duality against a hand-built
// dual feasible point for the box+budget family: for any λ ≥ 0,
// optimum ≤ λ·s + Σ max(0, c_i-λ)·u_i.
func TestQuickDualityGapOnKnapsack(t *testing.T) {
	prop := func(raw boxLP, rawLambda float64) bool {
		b := raw.normalized()
		lambda := math.Mod(math.Abs(rawLambda), 8)
		if math.IsNaN(lambda) {
			lambda = 1
		}
		sol, err := Solve(b.problem())
		if err != nil || sol.Status != Optimal {
			return false
		}
		bound := lambda * b.S
		for i := range b.C {
			if over := b.C[i] - lambda; over > 0 {
				bound += over * b.U[i]
			}
		}
		return sol.Objective <= bound+1e-6
	}
	if err := quick.Check(prop, propertyConfig); err != nil {
		t.Fatal(err)
	}
}
