// Package lp implements a small, dependency-free linear programming solver.
//
// The package exists because the Go standard library ships no LP solver and
// the Signaling Audit Game needs to solve two families of linear programs in
// real time: the multiple-LP Stackelberg program (LP (2) in the paper) and
// the optimal-signaling program (LP (3)). Both are tiny — at most a few
// dozen variables — so a dense two-phase primal simplex with careful
// tolerances is exact enough and extremely fast.
//
// The entry point is Problem: declare variables, an objective, bounds and
// linear constraints, then call Solve. The solver reports one of three
// outcomes (Optimal, Infeasible, Unbounded) and, when optimal, the primal
// solution and objective value.
//
// The implementation uses Dantzig pricing with an automatic switch to
// Bland's rule when stalling is detected, which guarantees termination on
// degenerate problems (the signaling LPs are frequently degenerate: several
// of their vertices collapse when the attacker is exactly indifferent).
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the optimization direction of a Problem.
type Sense int

const (
	// Minimize asks for the smallest objective value.
	Minimize Sense = iota
	// Maximize asks for the largest objective value.
	Maximize
)

// String returns a human-readable direction name.
func (s Sense) String() string {
	switch s {
	case Minimize:
		return "minimize"
	case Maximize:
		return "maximize"
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Rel is the relation of a linear constraint to its right-hand side.
type Rel int

const (
	// LE is "less than or equal" (a·x ≤ b).
	LE Rel = iota
	// GE is "greater than or equal" (a·x ≥ b).
	GE
	// EQ is equality (a·x = b).
	EQ
)

// String returns the relation symbol.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// Status is the outcome of solving a Problem.
type Status int

const (
	// Optimal means a finite optimal solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies all constraints and bounds.
	Infeasible
	// Unbounded means the objective can be improved without limit.
	Unbounded
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Constraint is one linear restriction a·x Rel b over the problem variables.
// Coeffs is indexed by variable; missing trailing entries are treated as 0.
type Constraint struct {
	Coeffs []float64
	Rel    Rel
	RHS    float64
}

// Problem is a linear program under construction. Create one with New, add
// an objective, bounds, and constraints, then call Solve. A Problem is not
// safe for concurrent mutation; Solve does not mutate the Problem and may be
// called concurrently on the same immutable Problem.
type Problem struct {
	sense       Sense
	n           int
	objective   []float64
	lower       []float64
	upper       []float64
	constraints []Constraint
}

// New returns an empty Problem over n variables with the given optimization
// sense. All variables start with bounds [0, +Inf), the conventional LP
// default; use SetBounds to change them. New panics if n <= 0 — a program
// with no variables is always a caller bug in this codebase.
func New(sense Sense, n int) *Problem {
	if n <= 0 {
		panic(fmt.Sprintf("lp: New called with n=%d; need at least one variable", n))
	}
	p := &Problem{
		sense:     sense,
		n:         n,
		objective: make([]float64, n),
		lower:     make([]float64, n),
		upper:     make([]float64, n),
	}
	for i := range p.upper {
		p.upper[i] = math.Inf(1)
	}
	return p
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.n }

// NumConstraints returns the number of linear constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// SetObjective sets the objective coefficient vector. Shorter slices are
// zero-extended. It returns an error if more coefficients than variables are
// provided.
func (p *Problem) SetObjective(coeffs []float64) error {
	if len(coeffs) > p.n {
		return fmt.Errorf("lp: objective has %d coefficients but problem has %d variables", len(coeffs), p.n)
	}
	for i := range p.objective {
		p.objective[i] = 0
	}
	copy(p.objective, coeffs)
	return nil
}

// SetBounds sets the inclusive bounds of variable i. lo may be -Inf and hi
// may be +Inf. It returns an error for an out-of-range index or an empty
// interval.
func (p *Problem) SetBounds(i int, lo, hi float64) error {
	if i < 0 || i >= p.n {
		return fmt.Errorf("lp: variable index %d out of range [0,%d)", i, p.n)
	}
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return errors.New("lp: NaN bound")
	}
	if lo > hi {
		return fmt.Errorf("lp: empty bound interval [%g,%g] for variable %d", lo, hi, i)
	}
	p.lower[i] = lo
	p.upper[i] = hi
	return nil
}

// AddConstraint appends the constraint coeffs·x rel rhs. Shorter coefficient
// slices are zero-extended; longer ones are rejected. The slice is copied.
func (p *Problem) AddConstraint(coeffs []float64, rel Rel, rhs float64) error {
	if len(coeffs) > p.n {
		return fmt.Errorf("lp: constraint has %d coefficients but problem has %d variables", len(coeffs), p.n)
	}
	if math.IsNaN(rhs) {
		return errors.New("lp: NaN right-hand side")
	}
	for _, c := range coeffs {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return errors.New("lp: non-finite constraint coefficient")
		}
	}
	cc := make([]float64, p.n)
	copy(cc, coeffs)
	p.constraints = append(p.constraints, Constraint{Coeffs: cc, Rel: rel, RHS: rhs})
	return nil
}

// Solution is the result of solving a Problem. X and Objective are
// meaningful only when Status == Optimal.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Duals holds one shadow price per constraint (in AddConstraint
	// order): the rate of change of the optimal objective per unit of
	// right-hand side, with the sign convention of the caller's
	// optimization sense (for Maximize, a binding ≤ budget row has a
	// nonnegative dual — the marginal value of one more unit of budget).
	// Only populated when Status == Optimal.
	Duals []float64
	// Iterations counts simplex pivots across both phases; exposed for
	// benchmarking and regression tests. Equal to Stats.Iterations().
	Iterations int
	// Stats breaks solver effort down by phase for observability callers.
	Stats Stats
}

// Stats itemizes the work one Solve call performed. The engine aggregates
// these into its simplex counters; sagbench prints them next to timings.
type Stats struct {
	// Phase1Iterations and Phase2Iterations count simplex iterations in the
	// feasibility and optimization phases respectively.
	Phase1Iterations int
	Phase2Iterations int
	// Pivots counts full tableau pivot eliminations, including the
	// drive-out pivots between phases that the iteration counts exclude.
	Pivots int
}

// Iterations returns the total simplex iterations across both phases.
func (s Stats) Iterations() int { return s.Phase1Iterations + s.Phase2Iterations }

// Accumulate adds o's effort into s (for aggregating across many solves).
func (s *Stats) Accumulate(o Stats) {
	s.Phase1Iterations += o.Phase1Iterations
	s.Phase2Iterations += o.Phase2Iterations
	s.Pivots += o.Pivots
}

// feasTol is the feasibility/optimality tolerance used throughout the
// solver. The audit-game LPs have coefficients of magnitude 1e0–1e4, for
// which 1e-9 comfortably separates true vertices from round-off.
const feasTol = 1e-9

// Violation returns the largest absolute violation of the problem's
// constraints and bounds at x, for verification in tests and callers that
// want a safety check. It returns an error if x has the wrong length.
func (p *Problem) Violation(x []float64) (float64, error) {
	if len(x) != p.n {
		return 0, fmt.Errorf("lp: point has %d entries, problem has %d variables", len(x), p.n)
	}
	worst := 0.0
	for i, xi := range x {
		if v := p.lower[i] - xi; v > worst {
			worst = v
		}
		if v := xi - p.upper[i]; v > worst {
			worst = v
		}
	}
	for _, c := range p.constraints {
		dot := 0.0
		for i, a := range c.Coeffs {
			dot += a * x[i]
		}
		var v float64
		switch c.Rel {
		case LE:
			v = dot - c.RHS
		case GE:
			v = c.RHS - dot
		case EQ:
			v = math.Abs(dot - c.RHS)
		}
		if v > worst {
			worst = v
		}
	}
	return worst, nil
}

// Objective evaluates the objective at x (regardless of feasibility).
func (p *Problem) ObjectiveAt(x []float64) float64 {
	v := 0.0
	for i := 0; i < p.n && i < len(x); i++ {
		v += p.objective[i] * x[i]
	}
	return v
}
