package lp

import "testing"

// TestSolveStats checks that the per-phase effort breakdown is populated
// and consistent with the legacy Iterations field.
func TestSolveStats(t *testing.T) {
	// max x+y s.t. x+y <= 1, x+2y >= 0.5 — the GE row forces a phase 1.
	p := New(Maximize, 2)
	if err := p.SetObjective([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 1}, LE, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 2}, GE, 0.5); err != nil {
		t.Fatal(err)
	}
	sol := MustSolve(p)
	if sol.Stats.Iterations() != sol.Iterations {
		t.Fatalf("Stats.Iterations()=%d disagrees with Iterations=%d", sol.Stats.Iterations(), sol.Iterations)
	}
	if sol.Stats.Phase1Iterations == 0 {
		t.Fatal("GE constraint must force phase-1 iterations")
	}
	if sol.Stats.Pivots < sol.Stats.Iterations() {
		t.Fatalf("pivots %d < iterations %d: drive-out pivots can only add", sol.Stats.Pivots, sol.Stats.Iterations())
	}

	var agg Stats
	agg.Accumulate(sol.Stats)
	agg.Accumulate(sol.Stats)
	if agg.Pivots != 2*sol.Stats.Pivots || agg.Iterations() != 2*sol.Iterations {
		t.Fatalf("Accumulate wrong: %+v", agg)
	}
}

// TestSolveStatsInfeasible: infeasible problems still report the phase-1
// effort spent discovering infeasibility.
func TestSolveStatsInfeasible(t *testing.T) {
	p := New(Minimize, 1)
	if err := p.AddConstraint([]float64{1}, GE, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1}, LE, 1); err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
	if sol.Stats.Phase1Iterations == 0 || sol.Stats.Phase2Iterations != 0 {
		t.Fatalf("infeasible stats %+v: want phase-1 work only", sol.Stats)
	}
}
