package lp

import "testing"

// TestSolveStats checks that the per-phase effort breakdown is populated
// and consistent with the legacy Iterations field.
func TestSolveStats(t *testing.T) {
	// max x+y s.t. x+y <= 1, x+2y >= 0.5 — the GE row forces a phase 1.
	p := New(Maximize, 2)
	if err := p.SetObjective([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 1}, LE, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 2}, GE, 0.5); err != nil {
		t.Fatal(err)
	}
	sol := MustSolve(p)
	if sol.Stats.Iterations() != sol.Iterations {
		t.Fatalf("Stats.Iterations()=%d disagrees with Iterations=%d", sol.Stats.Iterations(), sol.Iterations)
	}
	if sol.Stats.Phase1Iterations == 0 {
		t.Fatal("GE constraint must force phase-1 iterations")
	}
	if sol.Stats.Pivots < sol.Stats.Iterations() {
		t.Fatalf("pivots %d < iterations %d: drive-out pivots can only add", sol.Stats.Pivots, sol.Stats.Iterations())
	}

	var agg Stats
	agg.Accumulate(sol.Stats)
	agg.Accumulate(sol.Stats)
	if agg.Pivots != 2*sol.Stats.Pivots || agg.Iterations() != 2*sol.Iterations {
		t.Fatalf("Accumulate wrong: %+v", agg)
	}
}

// TestAtomicStats checks concurrent accumulation matches sequential
// accumulation exactly (integer counts are order-independent) and that
// concurrent Solve calls on one immutable Problem are race-safe — the
// guarantee the parallel candidate fan-out in internal/game depends on.
func TestAtomicStats(t *testing.T) {
	p := New(Maximize, 2)
	if err := p.SetObjective([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 1}, LE, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 2}, GE, 0.5); err != nil {
		t.Fatal(err)
	}
	ref := MustSolve(p)

	const workers = 8
	const perWorker = 25
	var agg AtomicStats
	done := make(chan Stats, workers)
	for w := 0; w < workers; w++ {
		go func() {
			var local Stats
			for i := 0; i < perWorker; i++ {
				sol := MustSolve(p) // same immutable Problem from every goroutine
				agg.Add(sol.Stats)
				local.Accumulate(sol.Stats)
			}
			done <- local
		}()
	}
	var want Stats
	for w := 0; w < workers; w++ {
		want.Accumulate(<-done)
	}
	if got := agg.Load(); got != want {
		t.Fatalf("atomic aggregation %+v != sequential %+v", got, want)
	}
	if got := agg.Load(); got.Pivots != workers*perWorker*ref.Stats.Pivots {
		t.Fatalf("pivots %d, want %d (deterministic per-solve effort)", got.Pivots, workers*perWorker*ref.Stats.Pivots)
	}
}

// TestSolveStatsInfeasible: infeasible problems still report the phase-1
// effort spent discovering infeasibility.
func TestSolveStatsInfeasible(t *testing.T) {
	p := New(Minimize, 1)
	if err := p.AddConstraint([]float64{1}, GE, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1}, LE, 1); err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
	if sol.Stats.Phase1Iterations == 0 || sol.Stats.Phase2Iterations != 0 {
		t.Fatalf("infeasible stats %+v: want phase-1 work only", sol.Stats)
	}
}
