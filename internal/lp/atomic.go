package lp

import "sync/atomic"

// AtomicStats is a Stats accumulator safe for concurrent use. The parallel
// multiple-LP fan-out in internal/game aggregates per-candidate solver
// effort through it: every field is an integer count, so concurrent
// accumulation is exact and order-independent — the totals are bit-identical
// to a sequential accumulation of the same solves, which the parallel SSE
// path relies on for reproducibility.
type AtomicStats struct {
	phase1 atomic.Int64
	phase2 atomic.Int64
	pivots atomic.Int64
}

// Add accumulates one solve's effort. Safe for concurrent use.
func (a *AtomicStats) Add(s Stats) {
	a.phase1.Add(int64(s.Phase1Iterations))
	a.phase2.Add(int64(s.Phase2Iterations))
	a.pivots.Add(int64(s.Pivots))
}

// Load returns the accumulated totals as a plain Stats value.
func (a *AtomicStats) Load() Stats {
	return Stats{
		Phase1Iterations: int(a.phase1.Load()),
		Phase2Iterations: int(a.phase2.Load()),
		Pivots:           int(a.pivots.Load()),
	}
}
