package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// ErrNumerical is returned when the simplex iteration limit is exceeded,
// which indicates either extreme degeneracy or ill-conditioned input far
// outside the ranges this solver is designed for.
var ErrNumerical = errors.New("lp: iteration limit exceeded (numerical trouble)")

// Solve optimizes the problem with a dense two-phase primal simplex. It
// never mutates p. The returned Solution has Status Optimal, Infeasible, or
// Unbounded; X and Objective are populated only for Optimal.
func Solve(p *Problem) (*Solution, error) {
	return SolveCtx(context.Background(), p)
}

// ctxCheckInterval is how many simplex iterations run between cooperative
// cancellation checks in SolveCtx. The audit-game LPs finish in tens of
// iterations, so a deadline is noticed within a handful of microseconds
// while the uncancellable common case pays one masked branch per iteration.
const ctxCheckInterval = 32

// SolveCtx is Solve with cooperative cancellation: the simplex iteration
// loop polls ctx every ctxCheckInterval pivots and returns ctx.Err()
// (wrapped) when the deadline expires or the context is canceled mid-solve.
// A context that can never be canceled (ctx.Done() == nil) adds no work to
// the pivot loop.
func SolveCtx(ctx context.Context, p *Problem) (*Solution, error) {
	std, err := toStandard(p)
	if err != nil {
		return nil, err
	}
	tab := newTableau(std)
	done := ctx.Done()

	// Phase 1: minimize the sum of artificial variables to find a basic
	// feasible solution.
	var stats Stats
	if tab.numArt > 0 {
		tab.loadPhase1Costs()
		n, status := tab.iterate(done)
		stats.Phase1Iterations = n
		if status == iterLimit {
			stats.Pivots = tab.pivots
			return nil, ErrNumerical
		}
		if status == canceledIter {
			stats.Pivots = tab.pivots
			return nil, fmt.Errorf("lp: solve canceled: %w", ctx.Err())
		}
		if tab.objValue() > 1e-7 {
			stats.Pivots = tab.pivots
			return &Solution{Status: Infeasible, Iterations: stats.Iterations(), Stats: stats}, nil
		}
		tab.driveOutArtificials()
	}

	// Phase 2: minimize the (converted) true objective.
	tab.loadPhase2Costs(std.c)
	n, status := tab.iterate(done)
	stats.Phase2Iterations = n
	stats.Pivots = tab.pivots
	switch status {
	case iterLimit:
		return nil, ErrNumerical
	case canceledIter:
		return nil, fmt.Errorf("lp: solve canceled: %w", ctx.Err())
	case unboundedIter:
		return &Solution{Status: Unbounded, Iterations: stats.Iterations(), Stats: stats}, nil
	}

	y := tab.extract()
	x := std.recover(y)
	obj := p.ObjectiveAt(x)
	// Duals: internal minimization duals, flipped back for Maximize.
	duals := tab.duals(len(p.constraints))
	if p.sense == Maximize {
		for i := range duals {
			duals[i] = -duals[i]
		}
	}
	return &Solution{Status: Optimal, X: x, Objective: obj, Duals: duals, Iterations: stats.Iterations(), Stats: stats}, nil
}

// standardForm is a minimization problem over nonnegative variables y with
// equality/inequality rows, plus the bookkeeping needed to map y back to the
// caller's x.
type standardForm struct {
	c    []float64    // phase-2 costs over y
	rows []stdRow     // constraints over y, rhs already nonnegative where possible
	vmap []varMapping // one mapping per original variable
	ny   int          // number of y variables
}

type stdRow struct {
	coeffs []float64
	rel    Rel
	rhs    float64
}

// varMapping records how original variable i was rewritten.
//
//	shifted:  x = lo + y[a]
//	negated:  x = hi - y[a]
//	split:    x = y[a] - y[b]
type varMapping struct {
	kind  int // 0 shifted, 1 negated, 2 split
	a, b  int
	shift float64
}

const (
	vmShifted = iota
	vmNegated
	vmSplit
)

// toStandard rewrites the problem so every variable is nonnegative and the
// objective is a minimization. Finite upper bounds become explicit rows.
func toStandard(p *Problem) (*standardForm, error) {
	std := &standardForm{vmap: make([]varMapping, p.n)}
	type ub struct {
		y   int
		val float64
	}
	var ubs []ub
	for i := 0; i < p.n; i++ {
		lo, hi := p.lower[i], p.upper[i]
		switch {
		case !math.IsInf(lo, -1):
			std.vmap[i] = varMapping{kind: vmShifted, a: std.ny, shift: lo}
			if !math.IsInf(hi, 1) {
				ubs = append(ubs, ub{std.ny, hi - lo})
			}
			std.ny++
		case !math.IsInf(hi, 1):
			std.vmap[i] = varMapping{kind: vmNegated, a: std.ny, shift: hi}
			std.ny++
		default:
			std.vmap[i] = varMapping{kind: vmSplit, a: std.ny, b: std.ny + 1}
			std.ny += 2
		}
	}

	// Costs. Maximize c·x == minimize (-c)·x.
	sign := 1.0
	if p.sense == Maximize {
		sign = -1.0
	}
	std.c = make([]float64, std.ny)
	for i, m := range std.vmap {
		ci := sign * p.objective[i]
		switch m.kind {
		case vmShifted:
			std.c[m.a] += ci
		case vmNegated:
			std.c[m.a] -= ci
		case vmSplit:
			std.c[m.a] += ci
			std.c[m.b] -= ci
		}
	}

	// Constraints, rewritten over y.
	for _, con := range p.constraints {
		coeffs := make([]float64, std.ny)
		rhs := con.RHS
		for i, a := range con.Coeffs {
			if a == 0 {
				continue
			}
			m := std.vmap[i]
			switch m.kind {
			case vmShifted:
				coeffs[m.a] += a
				rhs -= a * m.shift
			case vmNegated:
				coeffs[m.a] -= a
				rhs -= a * m.shift
			case vmSplit:
				coeffs[m.a] += a
				coeffs[m.b] -= a
			}
		}
		std.rows = append(std.rows, stdRow{coeffs, con.Rel, rhs})
	}
	// Upper bounds y <= u as rows.
	for _, u := range ubs {
		coeffs := make([]float64, std.ny)
		coeffs[u.y] = 1
		std.rows = append(std.rows, stdRow{coeffs, LE, u.val})
	}
	if std.ny == 0 {
		return nil, errors.New("lp: all variables fixed out of the problem")
	}
	return std, nil
}

// recover maps a y-solution back to original variables.
func (s *standardForm) recover(y []float64) []float64 {
	x := make([]float64, len(s.vmap))
	for i, m := range s.vmap {
		switch m.kind {
		case vmShifted:
			x[i] = m.shift + y[m.a]
		case vmNegated:
			x[i] = m.shift - y[m.a]
		case vmSplit:
			x[i] = y[m.a] - y[m.b]
		}
	}
	return x
}

// tableau is a dense simplex tableau kept in canonical form: each basic
// variable's column is a unit vector and the cost row holds reduced costs.
type tableau struct {
	m, ncols int // rows, total columns (y + slack + artificial)
	ny       int
	numArt   int
	artStart int
	rows     [][]float64 // m rows, each ncols long
	rhs      []float64
	cost     []float64 // reduced costs, ncols long
	costRHS  float64   // negative of current objective value
	basis    []int     // basic column per row
	banned   []bool    // columns that may never re-enter (artificials in phase 2)
	pivots   int       // full pivot eliminations performed (all phases + drive-out)
	// dualCol/dualSign recover the dual value of row i from the reduced
	// cost of its marker column: y_i = dualSign[i] · cost[dualCol[i]]
	// (in the internal minimization orientation, before rhs-normalization
	// sign correction, which dualSign folds in).
	dualCol  []int
	dualSign []float64
}

func newTableau(std *standardForm) *tableau {
	m := len(std.rows)
	// Count slack and artificial columns.
	numSlack, numArt := 0, 0
	for _, r := range std.rows {
		rel, rhs := r.rel, r.rhs
		if rhs < 0 { // normalizing flips the relation
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		switch rel {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}
	t := &tableau{
		m:        m,
		ny:       std.ny,
		numArt:   numArt,
		artStart: std.ny + numSlack,
		ncols:    std.ny + numSlack + numArt,
		rhs:      make([]float64, m),
		basis:    make([]int, m),
	}
	t.rows = make([][]float64, m)
	t.cost = make([]float64, t.ncols)
	t.banned = make([]bool, t.ncols)
	t.dualCol = make([]int, m)
	t.dualSign = make([]float64, m)
	slack, art := std.ny, t.artStart
	for i, r := range std.rows {
		row := make([]float64, t.ncols)
		rel, rhs := r.rel, r.rhs
		sign := 1.0
		if rhs < 0 {
			sign = -1.0
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		for j, a := range r.coeffs {
			row[j] = sign * a
		}
		switch rel {
		case LE:
			row[slack] = 1
			t.basis[i] = slack
			// Slack coefficient +1, zero cost: y = −cost[slack].
			t.dualCol[i], t.dualSign[i] = slack, -sign
			slack++
		case GE:
			row[slack] = -1
			// Surplus coefficient −1: y = +cost[surplus].
			t.dualCol[i], t.dualSign[i] = slack, sign
			slack++
			row[art] = 1
			t.basis[i] = art
			art++
		case EQ:
			row[art] = 1
			t.basis[i] = art
			// Artificial coefficient +1: y = −cost[artificial].
			t.dualCol[i], t.dualSign[i] = art, -sign
			art++
		}
		t.rows[i] = row
		t.rhs[i] = rhs
	}
	return t
}

// duals extracts the dual value of each of the first n rows in the
// internal minimization orientation.
func (t *tableau) duals(n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n && i < t.m; i++ {
		out[i] = t.dualSign[i] * t.cost[t.dualCol[i]]
	}
	return out
}

// loadPhase1Costs sets the cost row for minimizing the sum of artificials,
// already reduced against the current (artificial) basis.
func (t *tableau) loadPhase1Costs() {
	for j := range t.cost {
		t.cost[j] = 0
	}
	for j := t.artStart; j < t.ncols; j++ {
		t.cost[j] = 1
	}
	t.costRHS = 0
	// Reduce: subtract rows whose basic variable has cost 1.
	for i, b := range t.basis {
		if b >= t.artStart {
			for j := 0; j < t.ncols; j++ {
				t.cost[j] -= t.rows[i][j]
			}
			t.costRHS -= t.rhs[i]
		}
	}
}

// loadPhase2Costs sets the cost row for the true objective c over y
// variables (slacks and artificials cost 0) and bans artificials from
// re-entering the basis.
func (t *tableau) loadPhase2Costs(c []float64) {
	for j := range t.cost {
		t.cost[j] = 0
	}
	copy(t.cost, c)
	t.costRHS = 0
	for j := t.artStart; j < t.ncols; j++ {
		t.banned[j] = true
	}
	for i, b := range t.basis {
		cb := 0.0
		if b < len(c) {
			cb = c[b]
		}
		if cb != 0 {
			for j := 0; j < t.ncols; j++ {
				t.cost[j] -= cb * t.rows[i][j]
			}
			t.costRHS -= cb * t.rhs[i]
		}
	}
}

// objValue returns the current objective value of the loaded cost row.
func (t *tableau) objValue() float64 { return -t.costRHS }

type iterStatus int

const (
	optimalIter iterStatus = iota
	unboundedIter
	iterLimit
	canceledIter
)

// iterate runs simplex pivots until optimality, unboundedness, the
// iteration cap, or cancellation of done (nil disables the checks). It
// returns the pivot count and the terminal status.
func (t *tableau) iterate(done <-chan struct{}) (int, iterStatus) {
	maxIter := 2000 + 200*(t.m+t.ncols)
	blandAfter := maxIter / 2
	for iter := 0; iter < maxIter; iter++ {
		if done != nil && iter%ctxCheckInterval == 0 {
			select {
			case <-done:
				return iter, canceledIter
			default:
			}
		}
		bland := iter >= blandAfter
		j := t.chooseEntering(bland)
		if j < 0 {
			return iter, optimalIter
		}
		i := t.chooseLeaving(j)
		if i < 0 {
			return iter, unboundedIter
		}
		t.pivot(i, j)
	}
	return maxIter, iterLimit
}

// chooseEntering returns the entering column index, or -1 at optimality.
// Dantzig pricing by default; Bland's rule (lowest eligible index) when
// requested, which guarantees anti-cycling.
func (t *tableau) chooseEntering(bland bool) int {
	best, bestVal := -1, -feasTol
	for j := 0; j < t.ncols; j++ {
		if t.banned[j] {
			continue
		}
		if c := t.cost[j]; c < bestVal {
			if bland {
				return j
			}
			best, bestVal = j, c
		}
	}
	return best
}

// chooseLeaving performs the ratio test for entering column j, returning the
// pivot row or -1 if the direction is unbounded. Ties break toward the row
// whose basic variable has the smallest index (lexicographic flavor that
// cooperates with Bland's rule).
func (t *tableau) chooseLeaving(j int) int {
	bestRow := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.m; i++ {
		a := t.rows[i][j]
		if a <= feasTol {
			continue
		}
		r := t.rhs[i] / a
		if r < bestRatio-feasTol || (r < bestRatio+feasTol && (bestRow < 0 || t.basis[i] < t.basis[bestRow])) {
			bestRow, bestRatio = i, r
		}
	}
	return bestRow
}

// pivot makes column j basic in row i with full-row elimination.
func (t *tableau) pivot(i, j int) {
	t.pivots++
	piv := t.rows[i][j]
	inv := 1.0 / piv
	row := t.rows[i]
	for k := 0; k < t.ncols; k++ {
		row[k] *= inv
	}
	t.rhs[i] *= inv
	row[j] = 1 // kill round-off on the pivot element
	for r := 0; r < t.m; r++ {
		if r == i {
			continue
		}
		f := t.rows[r][j]
		if f == 0 {
			continue
		}
		tr := t.rows[r]
		for k := 0; k < t.ncols; k++ {
			tr[k] -= f * row[k]
		}
		tr[j] = 0
		t.rhs[r] -= f * t.rhs[i]
		if t.rhs[r] < 0 && t.rhs[r] > -feasTol {
			t.rhs[r] = 0
		}
	}
	if f := t.cost[j]; f != 0 {
		for k := 0; k < t.ncols; k++ {
			t.cost[k] -= f * row[k]
		}
		t.cost[j] = 0
		t.costRHS -= f * t.rhs[i]
	}
	t.basis[i] = j
}

// driveOutArtificials removes artificial variables that remain basic at
// level zero after phase 1 by pivoting in any eligible structural column;
// redundant rows (all structural coefficients zero) are neutralized.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.rows[i][j]) > 1e-7 {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: zero it so it can never constrain a pivot.
			for k := range t.rows[i] {
				t.rows[i][k] = 0
			}
			t.rhs[i] = 0
		}
	}
}

// extract reads the y-solution out of the tableau.
func (t *tableau) extract() []float64 {
	y := make([]float64, t.ny)
	for i, b := range t.basis {
		if b < t.ny {
			y[b] = t.rhs[i]
		}
	}
	for i, v := range y {
		if v < 0 && v > -1e-7 {
			y[i] = 0
		}
	}
	return y
}

// MustSolve is a convenience wrapper for callers (mainly tests and examples)
// that consider anything but an optimal solution a programming error.
func MustSolve(p *Problem) *Solution {
	sol, err := Solve(p)
	if err != nil {
		panic(err)
	}
	if sol.Status != Optimal {
		panic(fmt.Sprintf("lp: expected optimal solution, got %v", sol.Status))
	}
	return sol
}
