package lp

import (
	"math"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func wantOptimal(t *testing.T, p *Problem, wantObj float64, wantX []float64) *Solution {
	t.Helper()
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-wantObj) > 1e-6 {
		t.Fatalf("objective = %g, want %g (x=%v)", sol.Objective, wantObj, sol.X)
	}
	if wantX != nil {
		for i := range wantX {
			if math.Abs(sol.X[i]-wantX[i]) > 1e-6 {
				t.Fatalf("x = %v, want %v", sol.X, wantX)
			}
		}
	}
	if v, err := p.Violation(sol.X); err != nil || v > 1e-6 {
		t.Fatalf("solution violates constraints by %g (err=%v)", v, err)
	}
	return sol
}

func TestMaximizeSimple2D(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic Dantzig).
	p := New(Maximize, 2)
	if err := p.SetObjective([]float64{3, 5}); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, p, []float64{1, 0}, LE, 4)
	mustAdd(t, p, []float64{0, 2}, LE, 12)
	mustAdd(t, p, []float64{3, 2}, LE, 18)
	wantOptimal(t, p, 36, []float64{2, 6})
}

func mustAdd(t *testing.T, p *Problem, c []float64, rel Rel, rhs float64) {
	t.Helper()
	if err := p.AddConstraint(c, rel, rhs); err != nil {
		t.Fatal(err)
	}
}

func TestMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3.
	p := New(Minimize, 2)
	if err := p.SetObjective([]float64{2, 3}); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, p, []float64{1, 1}, GE, 10)
	if err := p.SetBounds(0, 2, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.SetBounds(1, 3, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	wantOptimal(t, p, 2*7+3*3, []float64{7, 3})
}

func TestEqualityConstraint(t *testing.T) {
	// max x + y s.t. x + y = 5, x <= 3.
	p := New(Maximize, 2)
	_ = p.SetObjective([]float64{1, 1})
	mustAdd(t, p, []float64{1, 1}, EQ, 5)
	mustAdd(t, p, []float64{1, 0}, LE, 3)
	wantOptimal(t, p, 5, nil)
}

func TestInfeasible(t *testing.T) {
	p := New(Maximize, 1)
	_ = p.SetObjective([]float64{1})
	mustAdd(t, p, []float64{1}, GE, 5)
	mustAdd(t, p, []float64{1}, LE, 3)
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleZeroRow(t *testing.T) {
	// 0·x >= 5 is structurally infeasible.
	p := New(Minimize, 2)
	_ = p.SetObjective([]float64{1, 1})
	mustAdd(t, p, []float64{0, 0}, GE, 5)
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestRedundantZeroRowFeasible(t *testing.T) {
	// 0·x = 0 is vacuous and must not break the solve.
	p := New(Maximize, 1)
	_ = p.SetObjective([]float64{1})
	mustAdd(t, p, []float64{0}, EQ, 0)
	mustAdd(t, p, []float64{1}, LE, 7)
	wantOptimal(t, p, 7, []float64{7})
}

func TestUnbounded(t *testing.T) {
	p := New(Maximize, 2)
	_ = p.SetObjective([]float64{1, 1})
	mustAdd(t, p, []float64{1, -1}, LE, 1)
	sol := solveOK(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestUnboundedBelowMinimize(t *testing.T) {
	p := New(Minimize, 1)
	_ = p.SetObjective([]float64{1})
	if err := p.SetBounds(0, math.Inf(-1), 0); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeLowerBound(t *testing.T) {
	// min x s.t. x >= -5 → x = -5.
	p := New(Minimize, 1)
	_ = p.SetObjective([]float64{1})
	if err := p.SetBounds(0, -5, 10); err != nil {
		t.Fatal(err)
	}
	wantOptimal(t, p, -5, []float64{-5})
}

func TestUpperBoundOnly(t *testing.T) {
	// max x s.t. x <= 3 with lower bound -Inf.
	p := New(Maximize, 1)
	_ = p.SetObjective([]float64{1})
	if err := p.SetBounds(0, math.Inf(-1), 3); err != nil {
		t.Fatal(err)
	}
	wantOptimal(t, p, 3, []float64{3})
}

func TestFreeVariable(t *testing.T) {
	// min x + y, x free, y in [0,inf), x + y >= 2, x >= -4 via constraint.
	p := New(Minimize, 2)
	_ = p.SetObjective([]float64{1, 1})
	if err := p.SetBounds(0, math.Inf(-1), math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, p, []float64{1, 1}, GE, 2)
	mustAdd(t, p, []float64{1, 0}, GE, -4)
	wantOptimal(t, p, 2, nil)
}

func TestFixedVariable(t *testing.T) {
	// Bounds [2,2] pin a variable.
	p := New(Maximize, 2)
	_ = p.SetObjective([]float64{1, 1})
	if err := p.SetBounds(0, 2, 2); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, p, []float64{1, 1}, LE, 10)
	wantOptimal(t, p, 10, []float64{2, 8})
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x - y <= -4 is x + y >= 4.
	p := New(Minimize, 2)
	_ = p.SetObjective([]float64{1, 2})
	mustAdd(t, p, []float64{-1, -1}, LE, -4)
	wantOptimal(t, p, 4, []float64{4, 0})
}

func TestDegenerateCyclePotential(t *testing.T) {
	// Beale's classic cycling example; Bland fallback must terminate.
	p := New(Minimize, 4)
	_ = p.SetObjective([]float64{-0.75, 150, -0.02, 6})
	mustAdd(t, p, []float64{0.25, -60, -0.04, 9}, LE, 0)
	mustAdd(t, p, []float64{0.5, -90, -0.02, 3}, LE, 0)
	mustAdd(t, p, []float64{0, 0, 1, 0}, LE, 1)
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-(-0.05)) > 1e-6 {
		t.Fatalf("objective = %g, want -0.05", sol.Objective)
	}
}

func TestSignalingShapedLP(t *testing.T) {
	// LP (3) from the paper with type-1 payoffs and θ = 0.1:
	// max 100 p0 - 400 q0
	// s.t. -2000 p1 + 400 q1 <= 0; p1 + p0 = 0.1; q1 + q0 = 0.9; all in [0,1].
	p := New(Maximize, 4) // p1, q1, p0, q0
	_ = p.SetObjective([]float64{0, 0, 100, -400})
	for i := 0; i < 4; i++ {
		if err := p.SetBounds(i, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(t, p, []float64{-2000, 400, 0, 0}, LE, 0)
	mustAdd(t, p, []float64{1, 0, 1, 0}, EQ, 0.1)
	mustAdd(t, p, []float64{0, 1, 0, 1}, EQ, 0.9)
	sol := wantOptimal(t, p, -400*(0.1*-2000+0.9*400)/400, nil)
	// Theorem 3: p0 = 0 at the optimum; β = 0.1(-2000)+0.9(400) = 160 > 0,
	// objective = U_du·β/U_au = -400·160/400 = -160.
	if math.Abs(sol.X[2]) > 1e-7 {
		t.Fatalf("p0 = %g, want 0 (Theorem 3)", sol.X[2])
	}
	if math.Abs(sol.Objective-(-160)) > 1e-6 {
		t.Fatalf("objective = %g, want -160", sol.Objective)
	}
}

func TestEmptyObjectiveIsFeasibilityCheck(t *testing.T) {
	p := New(Minimize, 2)
	mustAdd(t, p, []float64{1, 1}, EQ, 3)
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.X[0]+sol.X[1]-3) > 1e-7 {
		t.Fatalf("x = %v does not satisfy x+y=3", sol.X)
	}
}

func TestSolveDoesNotMutateProblem(t *testing.T) {
	p := New(Maximize, 2)
	_ = p.SetObjective([]float64{1, 2})
	mustAdd(t, p, []float64{1, 1}, LE, 4)
	before := append([]float64(nil), p.objective...)
	_ = solveOK(t, p)
	_ = solveOK(t, p) // solving twice must give identical results
	for i := range before {
		if p.objective[i] != before[i] {
			t.Fatal("Solve mutated the problem objective")
		}
	}
}

func TestAPIErrors(t *testing.T) {
	p := New(Minimize, 2)
	if err := p.SetObjective([]float64{1, 2, 3}); err == nil {
		t.Error("SetObjective with too many coefficients should fail")
	}
	if err := p.AddConstraint([]float64{1, 2, 3}, LE, 0); err == nil {
		t.Error("AddConstraint with too many coefficients should fail")
	}
	if err := p.AddConstraint([]float64{math.NaN()}, LE, 0); err == nil {
		t.Error("AddConstraint with NaN coefficient should fail")
	}
	if err := p.AddConstraint([]float64{1}, LE, math.NaN()); err == nil {
		t.Error("AddConstraint with NaN rhs should fail")
	}
	if err := p.SetBounds(5, 0, 1); err == nil {
		t.Error("SetBounds out of range should fail")
	}
	if err := p.SetBounds(0, 2, 1); err == nil {
		t.Error("SetBounds with empty interval should fail")
	}
	if err := p.SetBounds(0, math.NaN(), 1); err == nil {
		t.Error("SetBounds with NaN should fail")
	}
}

func TestNewPanicsOnZeroVars(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(_,0) should panic")
		}
	}()
	New(Minimize, 0)
}

func TestStringers(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Minimize.String(), "minimize"},
		{Maximize.String(), "maximize"},
		{LE.String(), "<="},
		{GE.String(), ">="},
		{EQ.String(), "="},
		{Optimal.String(), "optimal"},
		{Infeasible.String(), "infeasible"},
		{Unbounded.String(), "unbounded"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
	if Sense(99).String() == "" || Rel(99).String() == "" || Status(99).String() == "" {
		t.Error("out-of-range stringers should not be empty")
	}
}

func TestMustSolvePanicsOnInfeasible(t *testing.T) {
	p := New(Minimize, 1)
	mustAdd(t, p, []float64{1}, GE, 2)
	mustAdd(t, p, []float64{1}, LE, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("MustSolve should panic on infeasible problems")
		}
	}()
	MustSolve(p)
}

func TestViolationReporting(t *testing.T) {
	p := New(Minimize, 2)
	mustAdd(t, p, []float64{1, 1}, GE, 10)
	v, err := p.Violation([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-8) > 1e-12 {
		t.Fatalf("violation = %g, want 8", v)
	}
	if _, err := p.Violation([]float64{1}); err == nil {
		t.Error("Violation with wrong-length point should fail")
	}
}

func TestTransportationProblem(t *testing.T) {
	// 2 suppliers (cap 20, 30), 3 consumers (demand 10, 25, 15), min cost.
	// Costs: s1: 2 4 5 / s2: 3 1 7. Optimal: s1→c1 5, s1→c3 15, s2→c1 5,
	// s2→c2 25 → 2·5+5·15+3·5+1·25 = 125.
	p := New(Minimize, 6)
	_ = p.SetObjective([]float64{2, 4, 5, 3, 1, 7})
	mustAdd(t, p, []float64{1, 1, 1, 0, 0, 0}, LE, 20)
	mustAdd(t, p, []float64{0, 0, 0, 1, 1, 1}, LE, 30)
	mustAdd(t, p, []float64{1, 0, 0, 1, 0, 0}, EQ, 10)
	mustAdd(t, p, []float64{0, 1, 0, 0, 1, 0}, EQ, 25)
	mustAdd(t, p, []float64{0, 0, 1, 0, 0, 1}, EQ, 15)
	wantOptimal(t, p, 125, nil)
}

func TestLargeRandomFeasibleBattery(t *testing.T) {
	// Deterministic battery of randomly generated feasible LPs; verifies the
	// solver finds a feasible point whose objective at least matches the
	// generator's seed point (which is feasible by construction).
	rng := newLCG(42)
	for trial := 0; trial < 60; trial++ {
		n := 2 + int(rng.next()%5)
		m := 1 + int(rng.next()%6)
		p := New(Maximize, n)
		obj := make([]float64, n)
		seed := make([]float64, n)
		for i := range obj {
			obj[i] = rng.unit()*4 - 2
			seed[i] = rng.unit() * 3
		}
		_ = p.SetObjective(obj)
		for i := 0; i < n; i++ {
			_ = p.SetBounds(i, 0, 10)
		}
		for k := 0; k < m; k++ {
			row := make([]float64, n)
			dot := 0.0
			for i := range row {
				row[i] = rng.unit()*2 - 0.5
				dot += row[i] * seed[i]
			}
			// rhs = dot + slack keeps the seed point feasible.
			mustAdd(t, p, row, LE, dot+rng.unit())
		}
		sol := solveOK(t, p)
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status = %v, want optimal", trial, sol.Status)
		}
		if v, _ := p.Violation(sol.X); v > 1e-6 {
			t.Fatalf("trial %d: violation %g", trial, v)
		}
		seedObj := p.ObjectiveAt(seed)
		if sol.Objective < seedObj-1e-6 {
			t.Fatalf("trial %d: objective %g worse than known feasible %g", trial, sol.Objective, seedObj)
		}
	}
}

// lcg is a tiny deterministic generator so the battery above is reproducible
// without seeding global rand.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed} }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 16
}

func (l *lcg) unit() float64 { return float64(l.next()%1_000_000) / 1_000_000 }
