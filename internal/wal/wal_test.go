package wal

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/fallback"
	"github.com/auditgames/sag/internal/obs"
)

// sampleRecords returns one record of every kind with non-trivial fields.
func sampleRecords() []Record {
	return []Record{
		{Kind: KindCycleOpen, Budget: 12.5},
		{Kind: KindDecision, Decision: core.DecisionRecord{
			Seq: 0, Type: 3, Time: 90 * time.Minute,
			Warned: true, AppliedSAG: true, Fallback: fallback.None,
			Theta: 0.41, AuditCharge: 0.3125,
			BudgetBefore: 12.5, BudgetAfter: 11.875,
			SSEUtility: -42.7, OSSPUtility: -31.9,
		}},
		{Kind: KindMeta, Meta: Meta{Alerted: true}},
		{Kind: KindMeta, Meta: Meta{Alerted: true, Warned: true}},
		{Kind: KindMeta},
		{Kind: KindQuit, Employee: 417},
		{Kind: KindDecision, Decision: core.DecisionRecord{
			Seq: 1, Type: 0, Time: time.Hour,
			Vacuous: true, Fallback: fallback.Static,
			BudgetBefore: 11.875, BudgetAfter: 11.875,
		}},
		{Kind: KindCycleClose},
		{Kind: KindSnapshot, Snapshot: []byte(`{"engine":{"budget":1}}`)},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, r := range sampleRecords() {
		payload, err := encode(nil, r)
		if err != nil {
			t.Fatalf("encode %v: %v", r.Kind, err)
		}
		back, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("decode %v: %v", r.Kind, err)
		}
		if !reflect.DeepEqual(r, back) {
			t.Fatalf("round trip changed %v record:\n got %+v\nwant %+v", r.Kind, back, r)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	cases := []Record{
		{Kind: Kind(99)},
		{Kind: KindDecision, Decision: core.DecisionRecord{Type: -1}},
		{Kind: KindDecision, Decision: core.DecisionRecord{Time: -time.Second}},
		{Kind: KindQuit, Employee: -4},
	}
	for _, r := range cases {
		if _, err := encode(nil, r); err == nil {
			t.Errorf("encode accepted invalid record %+v", r)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	for _, r := range sampleRecords() {
		if r.Kind == KindSnapshot {
			continue // snapshot payloads are opaque, any length is valid
		}
		payload, err := encode(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeRecord(append(payload, 0xAA)); err == nil {
			t.Errorf("decode accepted %v record with a trailing byte", r.Kind)
		}
	}
}

func TestDecodeFloatBitExact(t *testing.T) {
	// The budget chain must survive the journal bit for bit, including
	// values that decimal formats mangle.
	vals := []float64{0, math.Pi, 1.0 / 3.0, math.SmallestNonzeroFloat64, math.MaxFloat64}
	for _, v := range vals {
		payload, err := encode(nil, Record{Kind: KindCycleOpen, Budget: v})
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeRecord(payload)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(back.Budget) != math.Float64bits(v) {
			t.Fatalf("float %g changed bits through the journal", v)
		}
	}
}

// appendAll appends records and waits for each durability ack.
func appendAll(t *testing.T, j *Journal, recs []Record) {
	t.Helper()
	for _, r := range recs {
		wait, err := j.Append(r)
		if err != nil {
			t.Fatalf("append %v: %v", r.Kind, err)
		}
		if wait != nil {
			if err := wait(); err != nil {
				t.Fatalf("wait %v: %v", r.Kind, err)
			}
		}
	}
}

func TestJournalAppendRecover(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			j, rec, err := Open(dir, Options{Fsync: policy, Interval: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			if rec.Records != 0 || rec.Snapshot != nil {
				t.Fatalf("fresh dir recovered %+v", rec)
			}
			want := sampleRecords()
			appendAll(t, j, want)
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}

			rec2, err := Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			if rec2.Records != len(want) {
				t.Fatalf("recovered %d records, want %d", rec2.Records, len(want))
			}
			// The final sample record is a snapshot, so the tail is empty and
			// the snapshot blob is the last one written.
			if string(rec2.Snapshot) != string(want[len(want)-1].Snapshot) {
				t.Fatalf("snapshot blob changed: %q", rec2.Snapshot)
			}
			if len(rec2.Tail) != 0 {
				t.Fatalf("tail has %d records, want 0 (snapshot is last)", len(rec2.Tail))
			}
		})
	}
}

func TestRecoverTailAfterSnapshot(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Snapshot([]byte("snap-1")); err != nil {
		t.Fatal(err)
	}
	tail := []Record{
		{Kind: KindMeta, Meta: Meta{Alerted: true}},
		{Kind: KindQuit, Employee: 7},
	}
	appendAll(t, j, tail)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != "snap-1" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if !reflect.DeepEqual(rec.Tail, tail) {
		t.Fatalf("tail = %+v, want %+v", rec.Tail, tail)
	}
}

func TestJournalRollsSegments(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 64; i++ {
		r := Record{Kind: KindQuit, Employee: i}
		want = append(want, r)
	}
	appendAll(t, j, want)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments at a 256-byte roll size, got %d", len(segs))
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec.Tail, want) {
		t.Fatalf("recovered %d records across %d segments, want %d", len(rec.Tail), len(segs), len(want))
	}
}

func TestReopenStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, []Record{{Kind: KindCycleClose}})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, rec, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rec.Records != 1 {
		t.Fatalf("recovered %d records, want 1", rec.Records)
	}
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Sealed segment + the reopened journal's fresh one.
	if len(segs) != 2 {
		t.Fatalf("expected sealed + fresh segment, got %v", segs)
	}
}

func TestSnapshotPrunesSealedSegments(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncNone, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		appendAll(t, j, []Record{{Kind: KindQuit, Employee: i}})
	}
	before, _ := segments(dir)
	if len(before) < 3 {
		t.Fatalf("test needs several segments, got %d", len(before))
	}
	if err := j.Snapshot([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	after, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 1 {
		t.Fatalf("snapshot kept %d segments, want 1: %v", len(after), after)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != "snap" || len(rec.Tail) != 0 {
		t.Fatalf("recovered snapshot=%q tail=%d", rec.Snapshot, len(rec.Tail))
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil { // idempotent
		t.Fatalf("second close: %v", err)
	}
	if _, err := j.Append(Record{Kind: KindCycleClose}); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := j.Sync(); err != ErrClosed {
		t.Fatalf("sync after close: %v, want ErrClosed", err)
	}
}

func TestConcurrentGroupCommit(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers*per)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				wait, err := j.Append(Record{Kind: KindQuit, Employee: w*per + i})
				if err != nil {
					errs <- err
					return
				}
				if err := wait(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != workers*per {
		t.Fatalf("recovered %d records, want %d", len(rec.Tail), workers*per)
	}
	seen := make(map[int]bool)
	for _, r := range rec.Tail {
		if r.Kind != KindQuit || seen[r.Employee] {
			t.Fatalf("bad or duplicate record %+v", r)
		}
		seen[r.Employee] = true
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNone} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("accepted unknown policy")
	}
}

func TestMetricsWired(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncAlways, Metrics: reg, Labels: []obs.Label{obs.L("tenant", "x")}})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, []Record{{Kind: KindCycleClose}})
	if err := j.Snapshot([]byte("abcde")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricAppendsTotal, "", obs.L("tenant", "x")).Value(); got != 2 {
		t.Fatalf("%s = %v, want 2", MetricAppendsTotal, got)
	}
	if got := reg.Gauge(MetricSnapshotBytes, "", obs.L("tenant", "x")).Value(); got != 5 {
		t.Fatalf("%s = %v, want 5", MetricSnapshotBytes, got)
	}
	if reg.Histogram(MetricFsyncSeconds, "", obs.DefTimeBuckets, obs.L("tenant", "x")).Count() == 0 {
		t.Fatalf("%s never observed", MetricFsyncSeconds)
	}
}

func TestRandomizedRoundTripThroughJournal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncNone, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 300; i++ {
		var r Record
		switch rng.Intn(5) {
		case 0:
			r = Record{Kind: KindDecision, Decision: core.DecisionRecord{
				Seq:          uint64(i),
				Type:         rng.Intn(10),
				Time:         time.Duration(rng.Int63n(int64(24 * time.Hour))),
				Warned:       rng.Intn(2) == 0,
				Vacuous:      rng.Intn(8) == 0,
				AppliedSAG:   rng.Intn(2) == 0,
				Fallback:     fallback.Level(rng.Intn(4)),
				Theta:        rng.Float64(),
				AuditCharge:  rng.Float64(),
				BudgetBefore: rng.Float64() * 100,
				BudgetAfter:  rng.Float64() * 100,
				SSEUtility:   rng.NormFloat64() * 1000,
				OSSPUtility:  rng.NormFloat64() * 1000,
			}}
		case 1:
			r = Record{Kind: KindMeta, Meta: Meta{Alerted: rng.Intn(2) == 0, Warned: rng.Intn(2) == 0}}
		case 2:
			r = Record{Kind: KindQuit, Employee: rng.Intn(10000)}
		case 3:
			r = Record{Kind: KindCycleOpen, Budget: rng.Float64() * 50}
		case 4:
			r = Record{Kind: KindCycleClose}
		}
		want = append(want, r)
	}
	appendAll(t, j, want)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec.Tail, want) {
		t.Fatal("randomized records did not survive the journal byte-exact")
	}
}

func TestOpenCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "wal")
	j, _, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := os.Stat(dir); err != nil {
		t.Fatal(err)
	}
}
