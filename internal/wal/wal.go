// Package wal is the engine's durability substrate: a per-tenant
// write-ahead journal of every state mutation — decision commits (with the
// sampled signal and budget charge), cycle opens and closes, quits, and
// counter deltas — plus periodic snapshot records capturing full state, so
// a crashed process recovers by restoring the last snapshot and replaying
// only the tail.
//
// # Format
//
// A journal is a directory of segment files named wal-NNNNNN.sagw, reusing
// the logstore segment idiom: a 5-byte header (magic "SAGW" + format
// version) followed by length-prefixed records
//
//	uvarint  payloadLen
//	payload  byte kind · kind-specific encoding (see record.go)
//	uint32   CRC-32 (IEEE) of payload, little endian
//
// A reopened journal always starts a fresh segment, so previously sealed
// files are immutable. Torn tails and CRC-corrupt records are handled at
// recovery by truncating to the last valid record (see Open); segments
// wholly superseded by a later snapshot are pruned.
//
// # Durability
//
// Appends go through a buffered group-commit writer: callers enqueue under
// a short lock and, under FsyncAlways, block on the returned wait until a
// shared fsync covers their record — concurrent committers amortize one
// fsync. FsyncInterval trades the tail of durability for throughput by
// syncing on a timer; FsyncNone leaves persistence to the OS page cache.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/auditgames/sag/internal/obs"
)

const (
	magic      = "SAGW"
	version    = 1
	headerSize = 5
	// maxRecordBytes guards against corrupt length prefixes on read.
	// Snapshot records carry whole-cycle state, so the cap is generous.
	maxRecordBytes = 64 << 20
)

// DefaultSegmentBytes is the default segment roll size.
const DefaultSegmentBytes = 16 << 20

// Journal metric names.
const (
	// MetricAppendsTotal counts records appended (snapshots included).
	MetricAppendsTotal = "sag_wal_appends_total"
	// MetricFsyncSeconds is a histogram of fsync latencies.
	MetricFsyncSeconds = "sag_wal_fsync_seconds"
	// MetricSnapshotBytes gauges the size of the last snapshot record.
	MetricSnapshotBytes = "sag_snapshot_bytes"
)

// FsyncPolicy selects when appended records are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways group-commits: every Append's wait blocks until an fsync
	// covers the record. A kill -9 loses at most responses, never
	// acknowledged state.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a timer (Options.Interval); a crash can lose
	// the records appended since the last tick.
	FsyncInterval
	// FsyncNone never fsyncs explicitly; the OS decides. Fastest, weakest.
	FsyncNone
)

// String returns the flag spelling of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNone:
		return "none"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy parses the flag spelling ("always", "interval", "none").
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "none":
		return FsyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always|interval|none)", s)
	}
}

// Options configures a Journal.
type Options struct {
	// Fsync selects the durability policy; the zero value is FsyncAlways.
	Fsync FsyncPolicy
	// Interval is the FsyncInterval tick; zero selects 100ms.
	Interval time.Duration
	// SegmentBytes is the roll size; zero selects DefaultSegmentBytes.
	SegmentBytes int64
	// Metrics, when non-nil, receives the sag_wal_* instruments, stamped
	// with Labels (the server passes tenant="<id>").
	Metrics *obs.Registry
	// Labels are extra labels for every instrument.
	Labels []obs.Label
}

func (o *Options) fillDefaults() {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
}

// ErrClosed is returned by appends to a closed journal.
var ErrClosed = errors.New("wal: journal is closed")

// Journal appends records to a journal directory. All methods are safe for
// concurrent use. Lock hierarchy: mu is a leaf — no callback runs under it.
type Journal struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	bw      *bufio.Writer
	seq     int   // sequence number of the active segment
	written int64 // bytes in the active segment
	dirty   bool  // records buffered/written since the last fsync
	closed  bool
	pending []chan error // FsyncAlways waiters for the next sync
	encBuf  []byte

	records        int64  // total valid records (recovered + appended)
	durable        Cursor // position up to which the journal is safely readable
	durableRecords int64  // records within the durable prefix
	subs           map[int]chan struct{}
	nextSubID      int

	// Retention bookkeeping (see retain.go): bytes per sealed segment, the
	// segment holding the newest snapshot (-1 when none), and the live
	// leases (id → pinned segment) that clamp the prune frontier.
	sealedBytes map[int]int64
	snapSeg     int
	leases      map[int]int
	nextLeaseID int
	pruneMu     sync.Mutex // serializes Prune (deletion + accounting)

	syncReq chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup

	appends   *obs.Counter
	fsyncSec  *obs.Histogram
	snapBytes *obs.Gauge
}

// Open recovers the journal directory (see Recover) and opens it for
// appending on a fresh segment. The returned Recovery describes what was
// restored — the caller replays Recovery.Snapshot + Recovery.Tail before
// appending new records.
func Open(dir string, opts Options) (*Journal, *Recovery, error) {
	opts.fillDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating journal dir: %w", err)
	}
	rec, err := Recover(dir)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{
		dir:       dir,
		opts:      opts,
		seq:       rec.nextSeq,
		records:   int64(rec.Records),
		subs:      make(map[int]chan struct{}),
		syncReq:   make(chan struct{}, 1),
		done:      make(chan struct{}),
		appends:   opts.Metrics.Counter(MetricAppendsTotal, "Journal records appended.", opts.Labels...),
		fsyncSec:  opts.Metrics.Histogram(MetricFsyncSeconds, "Journal fsync latency in seconds.", obs.DefTimeBuckets, opts.Labels...),
		snapBytes: opts.Metrics.Gauge(MetricSnapshotBytes, "Size of the last snapshot record in bytes.", opts.Labels...),
	}
	// Seed the retention accounting before the fresh active segment exists:
	// everything currently on disk is sealed.
	if err := j.initRetainLocked(); err != nil {
		return nil, nil, err
	}
	if err := j.openSegmentLocked(); err != nil {
		return nil, nil, err
	}
	// Everything recovered is already on disk, and the fresh segment's
	// header was flushed by openSegmentLocked, so readers (replication
	// streams) may start from the very first retained frame.
	j.durable = Cursor{Seg: j.seq, Off: headerSize}
	j.durableRecords = j.records
	j.wg.Add(1)
	go j.syncer()
	return j, rec, nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// segmentName renders the file name of segment n.
func segmentName(n int) string { return fmt.Sprintf("wal-%06d.sagw", n) }

// segments lists the journal's segment files in sequence order.
func segments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading journal dir: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".sagw") {
			out = append(out, filepath.Join(dir, name))
		}
	}
	sort.Strings(out)
	return out, nil
}

// segmentSeq parses the sequence number out of a segment path.
func segmentSeq(path string) (int, error) {
	var n int
	if _, err := fmt.Sscanf(filepath.Base(path), "wal-%06d.sagw", &n); err != nil {
		return 0, fmt.Errorf("wal: unparsable segment name %q", path)
	}
	return n, nil
}

// openSegmentLocked creates the next segment and writes its header. The
// caller holds mu or has exclusive access (Open).
func (j *Journal) openSegmentLocked() error {
	name := filepath.Join(j.dir, segmentName(j.seq))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	j.f = f
	j.bw = bufio.NewWriterSize(f, 1<<16)
	if _, err := j.bw.WriteString(magic); err != nil {
		return err
	}
	if err := j.bw.WriteByte(version); err != nil {
		return err
	}
	// Flush the header so the file is immediately parsable by direct
	// readers (cursor validation, replication streams); the fsync that
	// makes it durable rides on the next group commit.
	if err := j.bw.Flush(); err != nil {
		return err
	}
	j.written = headerSize
	j.dirty = true
	return syncDir(j.dir)
}

// syncDir fsyncs a directory so freshly created/removed files survive a
// crash of the file system metadata. Failures are reported, not fatal —
// some file systems refuse directory fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// rollLocked seals the active segment — flush, fsync, close, releasing any
// group-commit waiters (their records are in the sealed file) — and opens
// the next one. The caller holds mu.
func (j *Journal) rollLocked() error {
	waiters := j.pending
	j.pending = nil
	err := j.sealLocked()
	for _, ch := range waiters {
		ch <- err
	}
	if err != nil {
		return err
	}
	if j.sealedBytes == nil {
		j.sealedBytes = make(map[int]int64)
	}
	j.sealedBytes[j.seq] = j.written
	j.seq++
	return j.openSegmentLocked()
}

// sealLocked flushes, fsyncs, and closes the active segment.
func (j *Journal) sealLocked() error {
	if err := j.bw.Flush(); err != nil {
		return err
	}
	t0 := time.Now()
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.fsyncSec.ObserveSince(t0)
	j.dirty = false
	j.advanceDurableLocked(Cursor{Seg: j.seq, Off: j.written}, j.records)
	return j.f.Close()
}

// advanceDurableLocked moves the durable cursor forward (never backward —
// a group commit that raced a segment roll may report a stale position) and
// wakes every subscriber. The caller holds mu.
func (j *Journal) advanceDurableLocked(end Cursor, nrecs int64) {
	if !j.durable.Less(end) {
		return
	}
	j.durable = end
	if nrecs > j.durableRecords {
		j.durableRecords = nrecs
	}
	for _, ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default: // subscriber already has a pending wake
		}
	}
}

// DurableCursor returns the position up to which the journal's on-disk
// contents are complete and safely readable: under FsyncAlways/FsyncInterval
// it advances after each fsync, under FsyncNone after each flush.
func (j *Journal) DurableCursor() Cursor {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.durable
}

// DurableRecords returns how many records the durable prefix holds
// (recovered records included).
func (j *Journal) DurableRecords() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.durableRecords
}

// Subscribe returns a channel that receives a (coalesced) signal whenever
// the durable cursor advances, plus a cancel function releasing the
// subscription. Replication streams park on it instead of polling.
func (j *Journal) Subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	id := j.nextSubID
	j.nextSubID++
	j.subs[id] = ch
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, id)
		j.mu.Unlock()
	}
}

// appendLocked frames and writes one record payload into the active
// segment, rolling first if the segment is full. The caller holds mu.
func (j *Journal) appendLocked(r Record) error {
	if j.closed {
		return ErrClosed
	}
	if j.written >= j.opts.SegmentBytes {
		if err := j.rollLocked(); err != nil {
			return err
		}
	}
	payload, err := encode(j.encBuf[:0], r)
	if err != nil {
		return err
	}
	j.encBuf = payload[:0]
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	if _, err := j.bw.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := j.bw.Write(payload); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(payload))
	if _, err := j.bw.Write(crcBuf[:]); err != nil {
		return err
	}
	j.written += int64(n + len(payload) + 4)
	j.dirty = true
	j.records++
	j.appends.Inc()
	return nil
}

// Append enqueues one record in arrival order. The returned wait is nil
// when the record is already as durable as the policy promises (interval /
// none policies, or an immediate error); otherwise the caller must invoke
// it — outside any lock ordered before Append — and it blocks until a
// group fsync covers the record, returning the sync error if any.
//
// Append itself holds only the journal's short buffer lock, so callers may
// enqueue while holding their own commit lock to preserve commit order,
// then wait after releasing it.
func (j *Journal) Append(r Record) (wait func() error, err error) {
	j.mu.Lock()
	if err := j.appendLocked(r); err != nil {
		j.mu.Unlock()
		return nil, err
	}
	if j.opts.Fsync != FsyncAlways {
		j.mu.Unlock()
		return nil, nil
	}
	ch := make(chan error, 1)
	j.pending = append(j.pending, ch)
	j.mu.Unlock()
	j.kick()
	return func() error { return <-ch }, nil
}

// kick wakes the syncer without blocking (coalescing redundant wakes).
func (j *Journal) kick() {
	select {
	case j.syncReq <- struct{}{}:
	default:
	}
}

// syncer is the group-commit goroutine: it flushes the buffered writer,
// fsyncs once, and releases every waiter that enqueued before the flush.
// Under FsyncInterval it also ticks on the configured period.
func (j *Journal) syncer() {
	defer j.wg.Done()
	var tick *time.Ticker
	var tickC <-chan time.Time
	if j.opts.Fsync == FsyncInterval || j.opts.Fsync == FsyncNone {
		// FsyncNone ticks too: syncOnce then only flushes (no fsync), so
		// buffered records still become readable — and therefore
		// replicable — on a bounded delay.
		tick = time.NewTicker(j.opts.Interval)
		tickC = tick.C
		defer tick.Stop()
	}
	for {
		select {
		case <-j.done:
			return
		case <-j.syncReq:
		case <-tickC:
		}
		j.syncOnce()
	}
}

// syncOnce performs one group commit: flush under mu, fsync outside it so
// new appends keep flowing, then release the batch's waiters.
func (j *Journal) syncOnce() {
	j.mu.Lock()
	if j.closed || !j.dirty {
		waiters := j.pending
		j.pending = nil
		j.mu.Unlock()
		for _, ch := range waiters {
			ch <- nil
		}
		return
	}
	waiters := j.pending
	j.pending = nil
	err := j.bw.Flush()
	f := j.f
	end := Cursor{Seg: j.seq, Off: j.written}
	nrecs := j.records
	j.dirty = false
	j.mu.Unlock()

	if err == nil && j.opts.Fsync != FsyncNone {
		t0 := time.Now()
		err = f.Sync()
		j.fsyncSec.ObserveSince(t0)
	}
	if err == nil {
		j.mu.Lock()
		j.advanceDurableLocked(end, nrecs)
		j.mu.Unlock()
	}
	for _, ch := range waiters {
		ch <- err
	}
}

// Snapshot appends an owner-encoded full-state snapshot record, forces it
// to stable storage regardless of the fsync policy, and prunes segments
// wholly superseded by it. After Snapshot returns nil, recovery will
// restore from this snapshot (plus any records appended after it).
func (j *Journal) Snapshot(blob []byte) error {
	j.mu.Lock()
	if err := j.appendLocked(Record{Kind: KindSnapshot, Snapshot: blob}); err != nil {
		j.mu.Unlock()
		return err
	}
	// The segment that holds the snapshot: everything strictly older is
	// re-derivable from it and safe to delete once the snapshot is synced.
	snapSeg := j.seq
	err := j.bw.Flush()
	f := j.f
	end := Cursor{Seg: j.seq, Off: j.written}
	nrecs := j.records
	j.dirty = false
	j.mu.Unlock()
	if err != nil {
		return err
	}
	t0 := time.Now()
	if err := f.Sync(); err != nil {
		return err
	}
	j.fsyncSec.ObserveSince(t0)
	j.mu.Lock()
	j.advanceDurableLocked(end, nrecs)
	if snapSeg > j.snapSeg {
		j.snapSeg = snapSeg
	}
	j.mu.Unlock()
	j.snapBytes.Set(float64(len(blob)))
	// Prune what the snapshot superseded — clamped at the lease floor, so a
	// replication stream still reading old segments is never cut off (see
	// retain.go).
	_, _, err = j.Prune()
	return err
}

// Sync forces buffered records to stable storage (used by tests and by
// explicit flush points under the interval/none policies).
func (j *Journal) Sync() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	err := j.bw.Flush()
	f := j.f
	end := Cursor{Seg: j.seq, Off: j.written}
	nrecs := j.records
	j.dirty = false
	j.mu.Unlock()
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	j.mu.Lock()
	j.advanceDurableLocked(end, nrecs)
	j.mu.Unlock()
	return nil
}

// Close seals the active segment and stops the syncer. Further appends
// return ErrClosed. Close is idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	waiters := j.pending
	j.pending = nil
	err := j.sealLocked()
	// The sealed active segment stays on disk: fold it into the sealed-byte
	// accounting so RetainStats keeps describing the directory truthfully.
	if j.sealedBytes == nil {
		j.sealedBytes = make(map[int]int64)
	}
	j.sealedBytes[j.seq] = j.written
	j.written = 0
	j.mu.Unlock()
	for _, ch := range waiters {
		ch <- err
	}
	close(j.done)
	j.wg.Wait()
	return err
}
