package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ErrCorrupt wraps corruption detected while scanning a journal. Recover
// never returns it — corruption truncates — but sub-scanners use it to
// signal where the valid prefix ends.
var ErrCorrupt = errors.New("wal: corrupt record")

// Recovery is the result of scanning a journal directory: the newest
// snapshot (nil if none survived) and every record appended after it, in
// order. Tail records never include KindSnapshot.
type Recovery struct {
	// Snapshot is the owner-encoded blob of the newest snapshot record,
	// nil when the journal holds none.
	Snapshot []byte
	// Tail holds the records after the snapshot, oldest first.
	Tail []Record
	// Records counts every valid record scanned (snapshots included),
	// not just the post-snapshot tail.
	Records int
	// Segments counts the segment files scanned.
	Segments int
	// Truncated reports that a torn or corrupt tail was cut off.
	Truncated bool
	// TruncatedSegment/TruncatedOffset locate the cut: the named segment
	// was truncated to the offset, and any later segments were deleted.
	TruncatedSegment string
	TruncatedOffset  int64
	// End is the cursor just past the last valid record — the position a
	// replication client resumes from. Zero when the journal is empty.
	End Cursor
	// LastCRC is the stored checksum of the record ending at End (zero when
	// the journal is empty); the resume handshake presents it so the source
	// can prove the histories match before streaming.
	LastCRC uint32
	nextSeq int
}

// Recover scans dir's segments in order and reconstructs the journal's
// logical state. Corruption — a torn final write, a CRC mismatch, a bad
// header — does not fail recovery: the affected segment is truncated to
// its last valid record, every later segment is deleted (records after a
// tear are not trustworthy even if individually well-formed), and the scan
// result reflects only the valid prefix. Open calls this before appending.
func Recover(dir string) (*Recovery, error) {
	segs, err := segments(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return &Recovery{}, nil
		}
		return nil, err
	}
	rec := &Recovery{Segments: len(segs)}
	for i, seg := range segs {
		n, err := segmentSeq(seg)
		if err != nil {
			return nil, err
		}
		if n >= rec.nextSeq {
			rec.nextSeq = n + 1
		}
		validEnd, scanErr := scanSegment(seg, rec)
		if validEnd > headerSize {
			rec.End = Cursor{Seg: n, Off: validEnd}
		}
		if scanErr == nil {
			continue
		}
		if !errors.Is(scanErr, ErrCorrupt) {
			return nil, scanErr
		}
		// Corruption: cut this segment back to its valid prefix and drop
		// everything after it.
		rec.Truncated = true
		rec.TruncatedSegment = seg
		rec.TruncatedOffset = validEnd
		if validEnd <= headerSize {
			// Nothing valid in the file (even the header may be bad);
			// remove it entirely.
			if err := os.Remove(seg); err != nil {
				return nil, fmt.Errorf("wal: removing corrupt segment: %w", err)
			}
		} else if err := os.Truncate(seg, validEnd); err != nil {
			return nil, fmt.Errorf("wal: truncating corrupt segment: %w", err)
		}
		for _, later := range segs[i+1:] {
			if err := os.Remove(later); err != nil {
				return nil, fmt.Errorf("wal: removing post-corruption segment: %w", err)
			}
		}
		if err := syncDir(dir); err != nil {
			return nil, err
		}
		break
	}
	return rec, nil
}

// scanSegment reads one segment, folding each valid record into rec, and
// returns the byte offset just past the last valid record. A corrupt or
// torn record yields an error wrapping ErrCorrupt; the offset then marks
// where the caller should truncate.
func scanSegment(path string, rec *Recovery) (validEnd int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: opening segment: %w", err)
	}
	defer f.Close()

	data, err := io.ReadAll(f)
	if err != nil {
		return 0, fmt.Errorf("wal: reading segment: %w", err)
	}
	if len(data) < headerSize || string(data[:4]) != magic || data[4] != version {
		return 0, fmt.Errorf("%w: bad header in %s", ErrCorrupt, path)
	}
	off := int64(headerSize)
	buf := data[headerSize:]
	for len(buf) > 0 {
		plen, n := binary.Uvarint(buf)
		if n <= 0 || plen > maxRecordBytes {
			return off, fmt.Errorf("%w: bad length prefix in %s@%d", ErrCorrupt, path, off)
		}
		total := int64(n) + int64(plen) + 4
		if int64(len(buf)) < total {
			return off, fmt.Errorf("%w: torn record in %s@%d", ErrCorrupt, path, off)
		}
		payload := buf[n : int64(n)+int64(plen)]
		want := binary.LittleEndian.Uint32(buf[int64(n)+int64(plen) : total])
		if crc32.ChecksumIEEE(payload) != want {
			return off, fmt.Errorf("%w: crc mismatch in %s@%d", ErrCorrupt, path, off)
		}
		r, derr := DecodeRecord(payload)
		if derr != nil {
			return off, fmt.Errorf("%w: %v in %s@%d", ErrCorrupt, derr, path, off)
		}
		rec.fold(r)
		rec.LastCRC = want
		off += total
		buf = buf[total:]
	}
	return off, nil
}

// fold applies one valid record to the recovery state: a snapshot resets
// the tail (everything before it is superseded), anything else extends it.
func (rec *Recovery) fold(r Record) {
	rec.Records++
	if r.Kind == KindSnapshot {
		rec.Snapshot = r.Snapshot
		rec.Tail = rec.Tail[:0]
		return
	}
	rec.Tail = append(rec.Tail, r)
}
