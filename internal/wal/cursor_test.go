package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestCursorStringParseRoundTrip(t *testing.T) {
	for _, c := range []Cursor{{}, {Seg: 0, Off: 5}, {Seg: 3, Off: 4096}, {Seg: 120, Off: 1}} {
		back, err := ParseCursor(c.String())
		if err != nil {
			t.Fatalf("parse %q: %v", c.String(), err)
		}
		if back != c {
			t.Fatalf("round trip changed %v to %v", c, back)
		}
	}
	for _, s := range []string{"", "3", "3/", "/5", "a/5", "3/b", "-1/5", "3/-5"} {
		if _, err := ParseCursor(s); err == nil {
			t.Fatalf("ParseCursor(%q) accepted garbage", s)
		}
	}
}

func TestCursorOrdering(t *testing.T) {
	if !(Cursor{Seg: 1, Off: 900}).Less(Cursor{Seg: 2, Off: 5}) {
		t.Fatal("segment order must dominate offset order")
	}
	if !(Cursor{Seg: 2, Off: 5}).Less(Cursor{Seg: 2, Off: 6}) {
		t.Fatal("offset order within a segment")
	}
	if (Cursor{Seg: 2, Off: 5}).Less(Cursor{Seg: 2, Off: 5}) {
		t.Fatal("Less must be strict")
	}
}

// shipFrames reads every durable frame of the journal at dir from cur.
func shipFrames(t *testing.T, dir string, cur, durable Cursor) []Frame {
	t.Helper()
	var out []Frame
	next, err := ReadFrames(dir, cur, durable, func(fr Frame) error {
		raw := make([]byte, len(fr.Raw))
		copy(raw, fr.Raw)
		out = append(out, Frame{Seg: fr.Seg, Off: fr.Off, Raw: raw})
		return nil
	})
	if err != nil {
		t.Fatalf("ReadFrames: %v", err)
	}
	if next != durable {
		t.Fatalf("ReadFrames stopped at %v, durable %v", next, durable)
	}
	return out
}

func TestReadFramesWalksDurableRecords(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncAlways, SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	want := sampleRecords()
	appendAll(t, j, want)

	frames := shipFrames(t, dir, Cursor{}, j.DurableCursor())
	if len(frames) != len(want) {
		t.Fatalf("read %d frames, want %d", len(frames), len(want))
	}
	for i, fr := range frames {
		payload, _, err := ParseFrame(fr.Raw)
		if err != nil {
			t.Fatalf("frame %d unparseable: %v", i, err)
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("frame %d undecodable: %v", i, err)
		}
		if !reflect.DeepEqual(rec, want[i]) {
			t.Fatalf("frame %d decoded to %+v, want %+v", i, rec, want[i])
		}
	}
	// Resuming from the end of frame 2 yields exactly the remaining frames.
	rest := shipFrames(t, dir, frames[2].End(), j.DurableCursor())
	if len(rest) != len(want)-3 {
		t.Fatalf("resume read %d frames, want %d", len(rest), len(want)-3)
	}
	if rest[0].Seg != frames[3].Seg || rest[0].Off != frames[3].Off {
		t.Fatalf("resume started at %d/%d, want %d/%d", rest[0].Seg, rest[0].Off, frames[3].Seg, frames[3].Off)
	}
}

func TestValidateCursor(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, sampleRecords())
	durable := j.DurableCursor()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.End != durable {
		t.Fatalf("recovered end %v, durable was %v", rec.End, durable)
	}
	if err := ValidateCursor(dir, rec.End, rec.LastCRC); err != nil {
		t.Fatalf("recovered cursor rejected: %v", err)
	}
	if err := ValidateCursor(dir, rec.End, rec.LastCRC+1); !errors.Is(err, ErrCursorInvalid) {
		t.Fatalf("wrong CRC accepted: %v", err)
	}
	if err := ValidateCursor(dir, Cursor{Seg: rec.End.Seg, Off: rec.End.Off - 1}, 0); !errors.Is(err, ErrCursorInvalid) {
		t.Fatalf("non-boundary offset accepted: %v", err)
	}
	if err := ValidateCursor(dir, Cursor{Seg: rec.End.Seg + 7, Off: headerSize}, 0); !errors.Is(err, ErrCursorInvalid) {
		t.Fatalf("future segment accepted: %v", err)
	}
	// The segment start needs no CRC proof (no preceding frame).
	if err := ValidateCursor(dir, Cursor{Seg: rec.End.Seg, Off: headerSize}, 12345); err != nil {
		t.Fatalf("segment-start cursor rejected: %v", err)
	}
}

func TestValidateCursorPrunedSegment(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncAlways, SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 24; i++ {
		appendAll(t, j, []Record{{Kind: KindQuit, Employee: i}})
	}
	if err := j.Snapshot([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	oldest, ok, err := OldestCursor(dir)
	if err != nil || !ok {
		t.Fatalf("OldestCursor: %v ok=%v", err, ok)
	}
	if oldest.Seg == 0 {
		t.Fatal("snapshot should have pruned segment 0")
	}
	if err := ValidateCursor(dir, Cursor{Seg: 0, Off: headerSize}, 0); !errors.Is(err, ErrCursorGone) {
		t.Fatalf("pruned cursor: %v, want ErrCursorGone", err)
	}
	if _, err := ReadFrames(dir, Cursor{Seg: 0, Off: headerSize}, j.DurableCursor(), func(Frame) error { return nil }); !errors.Is(err, ErrCursorGone) {
		t.Fatalf("ReadFrames over pruned segment: %v, want ErrCursorGone", err)
	}
	snap, found, err := LatestSnapshotCursor(dir)
	if err != nil || !found {
		t.Fatalf("LatestSnapshotCursor: %v found=%v", err, found)
	}
	if snap.Seg < oldest.Seg {
		t.Fatalf("snapshot cursor %v behind oldest retained %v", snap, oldest)
	}
}

// TestMirrorRoundTrip ships every frame of a source journal into a mirror and
// requires the mirrored directory to be byte-identical, with the same
// recovery result — the invariant the hot standby rests on.
func TestMirrorRoundTrip(t *testing.T) {
	src := t.TempDir()
	dst := t.TempDir()
	j, _, err := Open(src, Options{Fsync: FsyncAlways, SegmentBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	appendAll(t, j, sampleRecords())

	m, err := OpenMirror(dst, Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	frames := shipFrames(t, src, Cursor{}, j.DurableCursor())
	half := len(frames) / 2
	for _, fr := range frames[:half] {
		if _, err := m.Append(fr); err != nil {
			t.Fatalf("append %d/%d: %v", fr.Seg, fr.Off, err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Restarting the mirror mid-stream must resume exactly where recovery
	// says the tail is — the cursor a real follower derives after a crash.
	rec, err := Recover(dst)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != half {
		t.Fatalf("mirror recovered %d records, want %d", rec.Records, half)
	}
	m, err = OpenMirror(dst, rec.End)
	if err != nil {
		t.Fatalf("reopen mirror at %v: %v", rec.End, err)
	}
	for _, fr := range frames[half:] {
		if _, err := m.Append(fr); err != nil {
			t.Fatalf("append %d/%d: %v", fr.Seg, fr.Off, err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	srcRec, err := Recover(src)
	if err != nil {
		t.Fatal(err)
	}
	dstRec, err := Recover(dst)
	if err != nil {
		t.Fatal(err)
	}
	if dstRec.End != srcRec.End || dstRec.LastCRC != srcRec.LastCRC || dstRec.Records != srcRec.Records {
		t.Fatalf("mirror recovery (%v crc %08x n=%d) != source (%v crc %08x n=%d)",
			dstRec.End, dstRec.LastCRC, dstRec.Records, srcRec.End, srcRec.LastCRC, srcRec.Records)
	}
	segs, err := segments(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		want, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(dst, filepath.Base(s)))
		if err != nil {
			t.Fatalf("mirror missing %s: %v", filepath.Base(s), err)
		}
		if string(got) != string(want) {
			t.Fatalf("segment %s is not byte-identical", filepath.Base(s))
		}
	}
}

func TestMirrorRejectsGaps(t *testing.T) {
	src := t.TempDir()
	j, _, err := Open(src, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	appendAll(t, j, sampleRecords())
	frames := shipFrames(t, src, Cursor{}, j.DurableCursor())
	if len(frames) < 3 {
		t.Fatalf("need at least 3 frames, got %d", len(frames))
	}

	m, err := OpenMirror(t.TempDir(), Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Append(frames[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(frames[2]); !errors.Is(err, ErrMirrorGap) {
		t.Fatalf("skipped frame accepted: %v", err)
	}
	if _, err := m.Append(frames[0]); !errors.Is(err, ErrMirrorGap) {
		t.Fatalf("repeated frame accepted: %v", err)
	}

	// A resume cursor that does not match the file size is a gap too.
	dst2 := t.TempDir()
	m2, err := OpenMirror(dst2, Cursor{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Append(frames[0]); err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMirror(dst2, Cursor{Seg: frames[0].Seg, Off: frames[0].Off + int64(len(frames[0].Raw)) + 3}); !errors.Is(err, ErrMirrorGap) {
		t.Fatalf("mismatched resume size accepted: %v", err)
	}
	if _, err := OpenMirror(dst2, Cursor{Seg: 9, Off: headerSize + 1}); !errors.Is(err, ErrMirrorGap) {
		t.Fatalf("missing resume segment accepted: %v", err)
	}
}

func TestOldestCursorEmptyDir(t *testing.T) {
	if _, ok, err := OldestCursor(t.TempDir()); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
}
