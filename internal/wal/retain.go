package wal

import (
	"os"
	"path/filepath"
)

// Retention: byte accounting, leases, and lease-aware pruning.
//
// A journal's disk footprint is its sealed segments plus the active one.
// Everything strictly below the newest snapshot segment is re-derivable
// from the snapshot and is therefore *reclaimable*; it becomes *prunable*
// once no retention lease still pins it. Leases are how replication streams
// keep the segments they are reading out of the pruner's reach: the
// streamer acquires a lease at its resume cursor, advances it as frames
// ship, and releases it on disconnect. The invariant maintained here is
//
//	lease floor ≤ prune frontier ≤ newest snapshot segment
//
// so a prune can never delete a frame a connected reader still needs, and
// recovery always finds the snapshot it restores from.

// RetainStats is a point-in-time view of one journal's disk footprint.
type RetainStats struct {
	// Segments counts on-disk segment files (active one included).
	Segments int
	// TotalBytes is the journal's whole on-disk size in bytes.
	TotalBytes int64
	// PrunableBytes is deletable right now: sealed segments strictly below
	// both the newest snapshot segment and the lease floor.
	PrunableBytes int64
	// ReclaimableBytes is deletable after a fresh snapshot: every sealed
	// segment below the active one, clamped at the lease floor. This is
	// what a compactor's snapshot-then-prune would free.
	ReclaimableBytes int64
	// SnapshotSeg is the segment holding the newest snapshot record; -1
	// when the journal has none.
	SnapshotSeg int
	// LeaseFloorSeg is the lowest segment any live lease pins; -1 when no
	// lease is held.
	LeaseFloorSeg int
}

// Lease pins a journal suffix against pruning: no segment at or above the
// lease's position is deleted while the lease is live. A nil *Lease is a
// valid no-op (Advance and Release do nothing), so callers against sources
// without lease support need no branching.
type Lease struct {
	j   *Journal
	id  int
	seg int
}

// AcquireLease pins the journal from cur's segment onward. The caller must
// Release it; Advance moves the pin forward as the reader progresses.
func (j *Journal) AcquireLease(cur Cursor) *Lease {
	j.mu.Lock()
	defer j.mu.Unlock()
	id := j.nextLeaseID
	j.nextLeaseID++
	l := &Lease{j: j, id: id, seg: cur.Seg}
	if j.leases == nil {
		j.leases = make(map[int]int)
	}
	j.leases[id] = cur.Seg
	return l
}

// Advance moves the lease's pin forward to cur's segment. Moves backward
// are ignored — a lease only ever narrows what it protects.
func (l *Lease) Advance(cur Cursor) {
	if l == nil {
		return
	}
	l.j.mu.Lock()
	defer l.j.mu.Unlock()
	if cur.Seg > l.seg {
		l.seg = cur.Seg
		if _, ok := l.j.leases[l.id]; ok {
			l.j.leases[l.id] = cur.Seg
		}
	}
}

// Release drops the lease. Idempotent.
func (l *Lease) Release() {
	if l == nil {
		return
	}
	l.j.mu.Lock()
	defer l.j.mu.Unlock()
	delete(l.j.leases, l.id)
}

// leaseFloorLocked returns the lowest pinned segment; ok is false when no
// lease is held. The caller holds mu.
func (j *Journal) leaseFloorLocked() (int, bool) {
	floor, ok := 0, false
	for _, seg := range j.leases {
		if !ok || seg < floor {
			floor, ok = seg, true
		}
	}
	return floor, ok
}

// LeaseFloor returns the lowest segment any live lease pins; ok is false
// when no lease is held.
func (j *Journal) LeaseFloor() (seg int, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.leaseFloorLocked()
}

// RetainStats returns the journal's current disk accounting. Safe on a
// closed journal (the numbers describe whatever is still on disk).
func (j *Journal) RetainStats() RetainStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := RetainStats{
		Segments:      len(j.sealedBytes) + 1,
		TotalBytes:    j.written,
		SnapshotSeg:   j.snapSeg,
		LeaseFloorSeg: -1,
	}
	if j.closed {
		st.Segments-- // no active segment once sealed by Close
	}
	floor, hasLease := j.leaseFloorLocked()
	if hasLease {
		st.LeaseFloorSeg = floor
	}
	pruneTo := j.pruneFrontierLocked()
	reclaimTo := j.seq // a fresh snapshot would land in the active segment
	if hasLease && floor < reclaimTo {
		reclaimTo = floor
	}
	for seg, n := range j.sealedBytes {
		st.TotalBytes += n
		if seg < pruneTo {
			st.PrunableBytes += n
		}
		if seg < reclaimTo {
			st.ReclaimableBytes += n
		}
	}
	return st
}

// pruneFrontierLocked computes the highest segment number the pruner may
// delete below: the newest snapshot segment clamped at the lease floor.
// Zero means nothing is prunable (no snapshot yet). The caller holds mu.
func (j *Journal) pruneFrontierLocked() int {
	if j.snapSeg < 0 {
		return 0
	}
	frontier := j.snapSeg
	if floor, ok := j.leaseFloorLocked(); ok && floor < frontier {
		frontier = floor
	}
	return frontier
}

// Prune deletes sealed segments wholly superseded by the newest snapshot,
// never crossing the lease floor. It returns how many segments (and bytes)
// were removed. Concurrent Prune calls and prune-vs-reader races are safe:
// deletion is serialized, readers that lose the race observe ErrCursorGone.
func (j *Journal) Prune() (segs int, bytes int64, err error) {
	j.pruneMu.Lock()
	defer j.pruneMu.Unlock()

	j.mu.Lock()
	frontier := j.pruneFrontierLocked()
	var victims []int
	for seg := range j.sealedBytes {
		if seg < frontier {
			victims = append(victims, seg)
		}
	}
	j.mu.Unlock()
	if len(victims) == 0 {
		return 0, 0, nil
	}
	for _, seg := range victims {
		path := filepath.Join(j.dir, segmentName(seg))
		if rerr := os.Remove(path); rerr != nil && !os.IsNotExist(rerr) {
			return segs, bytes, rerr
		}
		j.mu.Lock()
		bytes += j.sealedBytes[seg]
		delete(j.sealedBytes, seg)
		j.mu.Unlock()
		segs++
	}
	return segs, bytes, syncDir(j.dir)
}

// initRetainLocked seeds the retention bookkeeping at Open time, before the
// fresh active segment exists: per-segment byte sizes from the directory
// and the newest snapshot position from a segment scan. Called with
// exclusive access (Open).
func (j *Journal) initRetainLocked() error {
	j.sealedBytes = make(map[int]int64)
	j.snapSeg = -1
	segs, err := segments(j.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		n, err := segmentSeq(s)
		if err != nil {
			continue // foreign file matching the glob
		}
		info, err := os.Stat(s)
		if err != nil {
			return err
		}
		j.sealedBytes[n] = info.Size()
	}
	if snap, ok, err := LatestSnapshotCursor(j.dir); err == nil && ok {
		j.snapSeg = snap.Seg
	}
	return nil
}
