package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// buildJournal writes recs into dir and seals the journal.
func buildJournal(t *testing.T, dir string, recs []Record) {
	t.Helper()
	j, _, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, recs)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	recs := []Record{
		{Kind: KindCycleOpen, Budget: 5},
		{Kind: KindQuit, Employee: 1},
		{Kind: KindQuit, Employee: 2},
	}
	buildJournal(t, dir, recs)
	segs, _ := segments(dir)
	if len(segs) != 1 {
		t.Fatalf("want one segment, got %v", segs)
	}
	// Tear the final write: chop bytes off the end, as a kill -9 mid-write
	// (or a lost page) would.
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	for cut := int64(1); cut < 4; cut++ {
		if err := os.Truncate(segs[0], info.Size()-cut); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(dir)
		if err != nil {
			t.Fatalf("recovery failed on a torn tail (cut %d): %v", cut, err)
		}
		if !rec.Truncated {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
		if rec.TruncatedSegment != segs[0] || rec.TruncatedOffset <= int64(headerSize) {
			t.Fatalf("cut %d: truncation located at %s@%d", cut, rec.TruncatedSegment, rec.TruncatedOffset)
		}
		// The last record is gone; the valid prefix survives.
		if !reflect.DeepEqual(rec.Tail, recs[:2]) {
			t.Fatalf("cut %d: recovered %+v, want first two records", cut, rec.Tail)
		}
		// The file was physically truncated: a second recovery is clean.
		rec2, err := Recover(dir)
		if err != nil {
			t.Fatal(err)
		}
		if rec2.Truncated {
			t.Fatalf("cut %d: second recovery still reports corruption", cut)
		}
		if !reflect.DeepEqual(rec2.Tail, recs[:2]) {
			t.Fatalf("cut %d: second recovery lost records", cut)
		}
	}
}

func TestRecoverCRCCorruptionTruncates(t *testing.T) {
	dir := t.TempDir()
	recs := []Record{
		{Kind: KindQuit, Employee: 10},
		{Kind: KindQuit, Employee: 20},
		{Kind: KindQuit, Employee: 30},
	}
	buildJournal(t, dir, recs)
	segs, _ := segments(dir)
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the middle record's payload (each record here is
	// 1-byte length + 2-byte payload + 4-byte CRC = 7 bytes).
	mid := headerSize + 7 + 2
	data[mid] ^= 0x40
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatalf("recovery failed on CRC corruption: %v", err)
	}
	if !rec.Truncated {
		t.Fatal("CRC corruption not reported")
	}
	// Only the record before the corruption survives; the corrupt record
	// AND the (individually valid) one after it are gone — records after a
	// tear are not trustworthy.
	if !reflect.DeepEqual(rec.Tail, recs[:1]) {
		t.Fatalf("recovered %+v, want only the first record", rec.Tail)
	}
}

func TestRecoverCorruptionDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncNone, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for i := 0; i < 40; i++ {
		r := Record{Kind: KindQuit, Employee: i}
		recs = append(recs, r)
	}
	appendAll(t, j, recs)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := segments(dir)
	if len(segs) < 3 {
		t.Fatalf("test needs ≥3 segments, got %d", len(segs))
	}
	// Corrupt the header of the second segment.
	if err := os.WriteFile(segs[1], []byte("BOGUS"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated {
		t.Fatal("corrupt segment header not reported")
	}
	// Everything from the corrupt segment onward is gone from disk.
	left, _ := segments(dir)
	if len(left) != 1 || left[0] != segs[0] {
		t.Fatalf("remaining segments %v, want only %s", left, segs[0])
	}
	// The first segment's records all survive, and nothing after.
	for i, r := range rec.Tail {
		if r.Employee != i {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if len(rec.Tail) == 0 || len(rec.Tail) >= len(recs) {
		t.Fatalf("recovered %d of %d records", len(rec.Tail), len(recs))
	}
}

func TestRecoverEmptyAndMissingDir(t *testing.T) {
	rec, err := Recover(t.TempDir())
	if err != nil || rec.Records != 0 {
		t.Fatalf("empty dir: %+v, %v", rec, err)
	}
	if _, err := Recover(filepath.Join(t.TempDir(), "missing")); err != nil {
		t.Fatalf("missing dir should recover empty, got %v", err)
	}
}

func TestRecoverWhollyCorruptSegmentRemoved(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, segmentName(0))
	if err := os.WriteFile(path, []byte("not a segment at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated || rec.Records != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("wholly corrupt segment not removed")
	}
	// The journal must boot cleanly on the scrubbed directory.
	j, rec2, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if rec2.Truncated || rec2.Records != 0 {
		t.Fatalf("second recovery = %+v", rec2)
	}
}

func TestOpenAfterTornTailAppendsCleanly(t *testing.T) {
	dir := t.TempDir()
	buildJournal(t, dir, []Record{{Kind: KindQuit, Employee: 1}, {Kind: KindQuit, Employee: 2}})
	segs, _ := segments(dir)
	info, _ := os.Stat(segs[0])
	if err := os.Truncate(segs[0], info.Size()-2); err != nil {
		t.Fatal(err)
	}
	// Open recovers (truncating the tear) and appends on a fresh segment.
	j, rec, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated || len(rec.Tail) != 1 {
		t.Fatalf("recovery = %+v", rec)
	}
	appendAll(t, j, []Record{{Kind: KindQuit, Employee: 3}})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{{Kind: KindQuit, Employee: 1}, {Kind: KindQuit, Employee: 3}}
	if !reflect.DeepEqual(final.Tail, want) {
		t.Fatalf("final tail %+v, want %+v", final.Tail, want)
	}
}
