package wal

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/fallback"
)

// Kind discriminates journal records.
type Kind uint8

const (
	// KindSnapshot carries an owner-encoded full-state snapshot. Recovery
	// restores from the last snapshot and replays only the records after it.
	KindSnapshot Kind = 1
	// KindDecision is one committed engine decision (core.DecisionRecord):
	// the chosen signal, the audit charge, and the budget chain.
	KindDecision Kind = 2
	// KindMeta is one served request that produced no engine decision —
	// a benign access, a flagged-user warning, or an unmodeled alert type —
	// carried for the tenant's cycle counters.
	KindMeta Kind = 3
	// KindQuit records that a warned employee abandoned the access.
	KindQuit Kind = 4
	// KindCycleOpen records a cycle rollover with its fresh budget.
	KindCycleOpen Kind = 5
	// KindCycleClose records that the cycle's audit plan was drawn.
	KindCycleClose Kind = 6
)

// String returns a stable name for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindSnapshot:
		return "snapshot"
	case KindDecision:
		return "decision"
	case KindMeta:
		return "meta"
	case KindQuit:
		return "quit"
	case KindCycleOpen:
		return "cycle_open"
	case KindCycleClose:
		return "cycle_close"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Meta flag bits.
const (
	// MetaAlerted marks that a detection rule fired on the access.
	MetaAlerted = 1 << 0
	// MetaWarned marks that the response carried a warning (flagged user).
	MetaWarned = 1 << 1
)

// Meta is the counter delta of one request that bypassed the engine.
// Every meta record implies one access; the flags add the alert/warn deltas.
type Meta struct {
	Alerted bool
	Warned  bool
}

// Record is one journal entry. Kind selects which payload field is live.
type Record struct {
	Kind     Kind
	Decision core.DecisionRecord // KindDecision
	Meta     Meta                // KindMeta
	Employee int                 // KindQuit
	Budget   float64             // KindCycleOpen
	Snapshot []byte              // KindSnapshot (owner-encoded blob)
}

// Decision record flag bits.
const (
	decWarned  = 1 << 0
	decVacuous = 1 << 1
	decApplied = 1 << 2
)

// appendFloat appends the IEEE-754 bit pattern little endian.
func appendFloat(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// encode appends the payload encoding of r (kind byte first) to buf.
func encode(buf []byte, r Record) ([]byte, error) {
	buf = append(buf, byte(r.Kind))
	switch r.Kind {
	case KindSnapshot:
		buf = append(buf, r.Snapshot...)
	case KindDecision:
		d := r.Decision
		if d.Type < 0 || d.Time < 0 {
			return nil, fmt.Errorf("wal: negative field in decision record %+v", d)
		}
		buf = binary.AppendUvarint(buf, d.Seq)
		buf = binary.AppendUvarint(buf, uint64(d.Type))
		buf = binary.AppendUvarint(buf, uint64(d.Time))
		var flags byte
		if d.Warned {
			flags |= decWarned
		}
		if d.Vacuous {
			flags |= decVacuous
		}
		if d.AppliedSAG {
			flags |= decApplied
		}
		buf = append(buf, flags, byte(d.Fallback))
		buf = appendFloat(buf, d.Theta)
		buf = appendFloat(buf, d.AuditCharge)
		buf = appendFloat(buf, d.BudgetBefore)
		buf = appendFloat(buf, d.BudgetAfter)
		buf = appendFloat(buf, d.SSEUtility)
		buf = appendFloat(buf, d.OSSPUtility)
	case KindMeta:
		var flags byte
		if r.Meta.Alerted {
			flags |= MetaAlerted
		}
		if r.Meta.Warned {
			flags |= MetaWarned
		}
		buf = append(buf, flags)
	case KindQuit:
		if r.Employee < 0 {
			return nil, fmt.Errorf("wal: negative employee %d", r.Employee)
		}
		buf = binary.AppendUvarint(buf, uint64(r.Employee))
	case KindCycleOpen:
		buf = appendFloat(buf, r.Budget)
	case KindCycleClose:
		// No payload beyond the kind byte.
	default:
		return nil, fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	return buf, nil
}

// DecodeRecord parses one payload (as framed by the segment format) back
// into a Record. It is the inverse of encode and rejects trailing bytes,
// truncated fields, and unknown kinds — corruption that slipped past the
// CRC must still never produce a silently wrong record.
func DecodeRecord(p []byte) (Record, error) {
	var r Record
	if len(p) == 0 {
		return r, fmt.Errorf("wal: empty payload")
	}
	r.Kind = Kind(p[0])
	rest := p[1:]
	switch r.Kind {
	case KindSnapshot:
		// The blob is owner-encoded; keep a copy so the caller may retain it
		// after the read buffer is reused.
		r.Snapshot = append([]byte(nil), rest...)
		return r, nil
	case KindDecision:
		var d core.DecisionRecord
		var err error
		if d.Seq, rest, err = takeUvarint(rest); err != nil {
			return r, fmt.Errorf("wal: decision seq: %w", err)
		}
		var v uint64
		if v, rest, err = takeUvarint(rest); err != nil {
			return r, fmt.Errorf("wal: decision type: %w", err)
		}
		if v > math.MaxInt32 {
			return r, fmt.Errorf("wal: implausible decision type %d", v)
		}
		d.Type = int(v)
		if v, rest, err = takeUvarint(rest); err != nil {
			return r, fmt.Errorf("wal: decision time: %w", err)
		}
		if v > uint64(math.MaxInt64) {
			return r, fmt.Errorf("wal: implausible decision time %d", v)
		}
		d.Time = time.Duration(v)
		if len(rest) < 2 {
			return r, fmt.Errorf("wal: decision flags truncated")
		}
		flags := rest[0]
		d.Warned = flags&decWarned != 0
		d.Vacuous = flags&decVacuous != 0
		d.AppliedSAG = flags&decApplied != 0
		d.Fallback = fallbackLevel(rest[1])
		rest = rest[2:]
		for _, dst := range []*float64{&d.Theta, &d.AuditCharge, &d.BudgetBefore, &d.BudgetAfter, &d.SSEUtility, &d.OSSPUtility} {
			if *dst, rest, err = takeFloat(rest); err != nil {
				return r, fmt.Errorf("wal: decision floats: %w", err)
			}
		}
		r.Decision = d
	case KindMeta:
		if len(rest) < 1 {
			return r, fmt.Errorf("wal: meta flags truncated")
		}
		r.Meta.Alerted = rest[0]&MetaAlerted != 0
		r.Meta.Warned = rest[0]&MetaWarned != 0
		rest = rest[1:]
	case KindQuit:
		v, tail, err := takeUvarint(rest)
		if err != nil {
			return r, fmt.Errorf("wal: quit employee: %w", err)
		}
		if v > math.MaxInt32 {
			return r, fmt.Errorf("wal: implausible employee %d", v)
		}
		r.Employee = int(v)
		rest = tail
	case KindCycleOpen:
		var err error
		if r.Budget, rest, err = takeFloat(rest); err != nil {
			return r, fmt.Errorf("wal: cycle budget: %w", err)
		}
	case KindCycleClose:
		// No payload.
	default:
		return r, fmt.Errorf("wal: unknown record kind %d", p[0])
	}
	if len(rest) != 0 {
		return r, fmt.Errorf("wal: %d trailing bytes after %v record", len(rest), r.Kind)
	}
	return r, nil
}

// fallbackLevel narrows a stored byte to the fallback ladder's range;
// out-of-range values (format drift, corruption past the CRC) clamp to the
// terminal Static rung rather than inventing a new level.
func fallbackLevel(b byte) fallback.Level {
	if l := fallback.Level(b); l >= fallback.None && l <= fallback.Static {
		return l
	}
	return fallback.Static
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad varint")
	}
	return v, b[n:], nil
}

func takeFloat(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("truncated float")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}
