package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Cursor addresses a byte position inside a journal directory: a segment
// sequence number and an offset within that segment file. Valid offsets
// always land on frame boundaries (headerSize is the first). Cursors order
// lexicographically by (Seg, Off); the zero Cursor means "no position".
type Cursor struct {
	Seg int   `json:"seg"`
	Off int64 `json:"off"`
}

// Less reports whether c is strictly before o in journal order.
func (c Cursor) Less(o Cursor) bool {
	return c.Seg < o.Seg || (c.Seg == o.Seg && c.Off < o.Off)
}

// IsZero reports whether c is the "no position" cursor.
func (c Cursor) IsZero() bool { return c.Seg == 0 && c.Off == 0 }

// String renders the cursor as "seg/off" — the wire spelling the replication
// protocol uses in headers and query parameters.
func (c Cursor) String() string { return fmt.Sprintf("%d/%d", c.Seg, c.Off) }

// ParseCursor parses the "seg/off" spelling produced by Cursor.String.
func ParseCursor(s string) (Cursor, error) {
	seg, off, ok := strings.Cut(s, "/")
	if !ok {
		return Cursor{}, fmt.Errorf("wal: malformed cursor %q", s)
	}
	n, err := strconv.Atoi(seg)
	if err != nil || n < 0 {
		return Cursor{}, fmt.Errorf("wal: malformed cursor segment %q", s)
	}
	o, err := strconv.ParseInt(off, 10, 64)
	if err != nil || o < 0 {
		return Cursor{}, fmt.Errorf("wal: malformed cursor offset %q", s)
	}
	return Cursor{Seg: n, Off: o}, nil
}

// Frame is one raw on-disk record frame with its journal position. Raw is
// the frame exactly as stored — uvarint payload length, payload, CRC-32 —
// so a follower can mirror segment files byte for byte.
type Frame struct {
	Seg int
	Off int64
	Raw []byte
}

// End returns the cursor just past the frame.
func (f Frame) End() Cursor { return Cursor{Seg: f.Seg, Off: f.Off + int64(len(f.Raw))} }

var (
	// ErrCursorGone reports a cursor whose segment is no longer retained —
	// pruned by a snapshot — so the reader must re-seed from a snapshot
	// instead of resuming.
	ErrCursorGone = errors.New("wal: cursor segment no longer retained")
	// ErrCursorInvalid reports a cursor that does not land on a record
	// boundary of the journal's current contents (divergent history, a
	// reader ahead of the journal, or a CRC mismatch at the boundary).
	ErrCursorInvalid = errors.New("wal: cursor does not match journal contents")
)

// ParseFrame splits a raw frame into its payload and stored CRC, verifying
// the length prefix spans the frame exactly and the CRC matches the payload.
func ParseFrame(raw []byte) (payload []byte, crc uint32, err error) {
	plen, n := binary.Uvarint(raw)
	if n <= 0 || plen > maxRecordBytes {
		return nil, 0, fmt.Errorf("%w: bad frame length prefix", ErrCorrupt)
	}
	if int64(len(raw)) != int64(n)+int64(plen)+4 {
		return nil, 0, fmt.Errorf("%w: frame length %d does not match prefix %d", ErrCorrupt, len(raw), plen)
	}
	payload = raw[n : int64(n)+int64(plen)]
	crc = binary.LittleEndian.Uint32(raw[int64(n)+int64(plen):])
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0, fmt.Errorf("%w: frame crc mismatch", ErrCorrupt)
	}
	return payload, crc, nil
}

// checkHeader validates a segment file's 5-byte header.
func checkHeader(path string, data []byte) error {
	if len(data) < headerSize || string(data[:4]) != magic || data[4] != version {
		return fmt.Errorf("%w: bad header in %s", ErrCorrupt, path)
	}
	return nil
}

// frameAt parses the frame starting at data[off:] (file offsets) and returns
// its total length. A torn or corrupt frame yields an ErrCorrupt error.
func frameAt(data []byte, off int64) (int64, error) {
	buf := data[off:]
	plen, n := binary.Uvarint(buf)
	if n <= 0 || plen > maxRecordBytes {
		return 0, fmt.Errorf("%w: bad length prefix @%d", ErrCorrupt, off)
	}
	total := int64(n) + int64(plen) + 4
	if int64(len(buf)) < total {
		return 0, fmt.Errorf("%w: torn frame @%d", ErrCorrupt, off)
	}
	return total, nil
}

// retainedSegments returns the journal's segment sequence numbers, sorted.
func retainedSegments(dir string) ([]int, error) {
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, s := range segs {
		n, err := segmentSeq(s)
		if err != nil {
			continue // foreign file matching the glob
		}
		out = append(out, n)
	}
	return out, nil
}

// OldestCursor returns the position of the first frame in the journal's
// oldest retained segment; ok is false when the directory holds no segments.
func OldestCursor(dir string) (Cursor, bool, error) {
	seqs, err := retainedSegments(dir)
	if err != nil || len(seqs) == 0 {
		return Cursor{}, false, err
	}
	return Cursor{Seg: seqs[0], Off: headerSize}, true, nil
}

// ReadFrames walks raw frames from cur (exclusive of anything before it) up
// to limit — normally the journal's durable cursor — calling fn for each and
// returning the advanced cursor. Sealed segments below limit.Seg are read to
// EOF; the segment at limit.Seg is read only to limit.Off. A missing segment
// below the limit yields ErrCursorGone (pruned under the reader). fn's Frame
// aliases a per-call buffer; it must not be retained across calls.
func ReadFrames(dir string, cur, limit Cursor, fn func(Frame) error) (Cursor, error) {
	for cur.Less(limit) {
		path := filepath.Join(dir, segmentName(cur.Seg))
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				return cur, fmt.Errorf("%w: segment %d missing", ErrCursorGone, cur.Seg)
			}
			return cur, fmt.Errorf("wal: reading segment: %w", err)
		}
		if err := checkHeader(path, data); err != nil {
			return cur, err
		}
		if cur.Off < headerSize {
			cur.Off = headerSize
		}
		end := int64(len(data))
		if cur.Seg == limit.Seg && limit.Off < end {
			end = limit.Off
		}
		for cur.Off < end {
			total, err := frameAt(data, cur.Off)
			if err != nil {
				return cur, err
			}
			if cur.Off+total > end {
				// A frame flushed past the captured limit: stop at the
				// boundary; the next call picks it up once durable.
				break
			}
			if err := fn(Frame{Seg: cur.Seg, Off: cur.Off, Raw: data[cur.Off : cur.Off+total]}); err != nil {
				return cur, err
			}
			cur.Off += total
		}
		if cur.Seg >= limit.Seg {
			return cur, nil
		}
		// Finished a sealed segment: advance to the next retained one.
		// Recovery can leave numbering gaps (corrupt segments are deleted),
		// so scan for the next sequence rather than assuming Seg+1.
		seqs, err := retainedSegments(dir)
		if err != nil {
			return cur, err
		}
		next := -1
		for _, n := range seqs {
			if n > cur.Seg {
				next = n
				break
			}
		}
		if next < 0 || next > limit.Seg {
			return cur, nil
		}
		cur = Cursor{Seg: next, Off: headerSize}
	}
	return cur, nil
}

// ValidateCursor checks that cur names a frame boundary of the journal at
// dir and that the frame ending exactly at cur carries lastCRC (lastCRC is
// ignored when cur.Off == headerSize — the segment start has no preceding
// frame). It returns ErrCursorGone when the segment was pruned and
// ErrCursorInvalid when the position or checksum does not match — either way
// the holder's history has diverged and it must re-seed.
func ValidateCursor(dir string, cur Cursor, lastCRC uint32) error {
	seqs, err := retainedSegments(dir)
	if err != nil {
		return err
	}
	found := false
	for _, n := range seqs {
		if n == cur.Seg {
			found = true
			break
		}
	}
	if !found {
		if len(seqs) > 0 && cur.Seg < seqs[0] {
			return fmt.Errorf("%w: segment %d pruned (oldest retained %d)", ErrCursorGone, cur.Seg, seqs[0])
		}
		return fmt.Errorf("%w: segment %d not in journal", ErrCursorInvalid, cur.Seg)
	}
	path := filepath.Join(dir, segmentName(cur.Seg))
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: reading segment: %w", err)
	}
	if err := checkHeader(path, data); err != nil {
		return err
	}
	if cur.Off == headerSize {
		return nil
	}
	off := int64(headerSize)
	for off < cur.Off {
		total, err := frameAt(data, off)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCursorInvalid, err)
		}
		if off+total == cur.Off {
			_, crc, perr := ParseFrame(data[off : off+total])
			if perr != nil {
				return fmt.Errorf("%w: %v", ErrCursorInvalid, perr)
			}
			if crc != lastCRC {
				return fmt.Errorf("%w: crc 0x%08x at %v, holder has 0x%08x", ErrCursorInvalid, crc, cur, lastCRC)
			}
			return nil
		}
		off += total
	}
	return fmt.Errorf("%w: offset %d is not a frame boundary of segment %d", ErrCursorInvalid, cur.Off, cur.Seg)
}

// LatestSnapshotCursor returns the position of the newest snapshot frame in
// the journal; ok is false when no snapshot record exists. A reader seeding
// from scratch starts applying at this cursor (the snapshot itself) and
// treats everything before it as history it persists but does not replay.
func LatestSnapshotCursor(dir string) (Cursor, bool, error) {
	seqs, err := retainedSegments(dir)
	if err != nil {
		return Cursor{}, false, err
	}
	var at Cursor
	ok := false
	for _, n := range seqs {
		path := filepath.Join(dir, segmentName(n))
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return Cursor{}, false, fmt.Errorf("wal: reading segment: %w", rerr)
		}
		if err := checkHeader(path, data); err != nil {
			return Cursor{}, false, err
		}
		off := int64(headerSize)
		for off < int64(len(data)) {
			total, ferr := frameAt(data, off)
			if ferr != nil {
				break // torn active tail; frames past it are not yet durable
			}
			payload, _, perr := ParseFrame(data[off : off+total])
			if perr == nil && len(payload) > 0 && Kind(payload[0]) == KindSnapshot {
				at = Cursor{Seg: n, Off: off}
				ok = true
			}
			off += total
		}
	}
	return at, ok, nil
}
