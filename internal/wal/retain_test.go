package wal

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
)

// diskFootprint sums the journal directory's segment files.
func diskFootprint(t *testing.T, dir string) (files int, bytes int64) {
	t.Helper()
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		info, err := os.Stat(s)
		if err != nil {
			t.Fatal(err)
		}
		bytes += info.Size()
	}
	return len(segs), bytes
}

// fillSegments appends meta records until the journal has rolled past
// wantSeq (i.e. the active segment's sequence is at least wantSeq).
func fillSegments(t *testing.T, j *Journal, wantSeq int) {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		appendAll(t, j, []Record{{Kind: KindMeta, Meta: Meta{Alerted: true}}})
		if j.DurableCursor().Seg >= wantSeq {
			return
		}
	}
	t.Fatalf("journal never rolled to segment %d", wantSeq)
}

func TestRetainStatsMatchesDisk(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncAlways, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	fillSegments(t, j, 3)
	st := j.RetainStats()
	files, bytes := diskFootprint(t, dir)
	if st.Segments != files {
		t.Fatalf("Segments = %d, disk has %d files", st.Segments, files)
	}
	if st.TotalBytes != bytes {
		t.Fatalf("TotalBytes = %d, disk holds %d", st.TotalBytes, bytes)
	}
	if st.SnapshotSeg != -1 {
		t.Fatalf("SnapshotSeg = %d before any snapshot, want -1", st.SnapshotSeg)
	}
	if st.LeaseFloorSeg != -1 {
		t.Fatalf("LeaseFloorSeg = %d with no lease, want -1", st.LeaseFloorSeg)
	}
	if st.PrunableBytes != 0 {
		t.Fatalf("PrunableBytes = %d with no snapshot, want 0", st.PrunableBytes)
	}
	// Everything sealed is reclaimable: a fresh snapshot would supersede it.
	if st.ReclaimableBytes <= 0 || st.ReclaimableBytes >= st.TotalBytes {
		t.Fatalf("ReclaimableBytes = %d, want in (0, %d)", st.ReclaimableBytes, st.TotalBytes)
	}
}

func TestSnapshotPrunesAndAccountingFollows(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncAlways, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	fillSegments(t, j, 4)
	if err := j.Snapshot([]byte(`{"s":1}`)); err != nil {
		t.Fatal(err)
	}
	st := j.RetainStats()
	files, bytes := diskFootprint(t, dir)
	if st.Segments != files || st.TotalBytes != bytes {
		t.Fatalf("post-prune stats (%d segs, %d B) disagree with disk (%d files, %d B)",
			st.Segments, st.TotalBytes, files, bytes)
	}
	if st.PrunableBytes != 0 {
		t.Fatalf("PrunableBytes = %d right after Snapshot's own prune, want 0", st.PrunableBytes)
	}
	if st.SnapshotSeg < 0 {
		t.Fatal("SnapshotSeg unset after Snapshot")
	}
	// Only segments at or above the snapshot segment survive.
	start, has, err := OldestCursor(dir)
	if err != nil || !has {
		t.Fatalf("OldestCursor: %v has=%v", err, has)
	}
	if start.Seg < st.SnapshotSeg {
		t.Fatalf("oldest retained segment %d below snapshot segment %d", start.Seg, st.SnapshotSeg)
	}
}

func TestLeaseClampsPruneFrontier(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncAlways, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	// A "follower" still needs segment 0.
	lease := j.AcquireLease(Cursor{Seg: 0, Off: headerSize})
	fillSegments(t, j, 4)
	if err := j.Snapshot([]byte(`{"s":1}`)); err != nil {
		t.Fatal(err)
	}
	st := j.RetainStats()
	if st.LeaseFloorSeg != 0 {
		t.Fatalf("LeaseFloorSeg = %d, want 0", st.LeaseFloorSeg)
	}
	if st.PrunableBytes != 0 || st.ReclaimableBytes != 0 {
		t.Fatalf("lease at 0 must clamp everything: prunable=%d reclaimable=%d",
			st.PrunableBytes, st.ReclaimableBytes)
	}
	if got, _, _ := OldestCursor(dir); got.Seg != 0 {
		t.Fatalf("segment 0 pruned under a live lease (oldest now %d)", got.Seg)
	}

	// Invariant check: lease floor ≤ prune frontier ≤ snapshot segment.
	j.mu.Lock()
	frontier := j.pruneFrontierLocked()
	j.mu.Unlock()
	if frontier != 0 {
		t.Fatalf("prune frontier = %d with lease floor 0, want 0", frontier)
	}

	// The follower advances past segment 2: exactly segments 0 and 1 become
	// prunable (snapshot seg permitting).
	lease.Advance(Cursor{Seg: 2, Off: headerSize})
	segs, bytes, err := j.Prune()
	if err != nil {
		t.Fatal(err)
	}
	if segs == 0 || bytes <= 0 {
		t.Fatalf("Prune freed nothing after lease advance (segs=%d bytes=%d)", segs, bytes)
	}
	if got, _, _ := OldestCursor(dir); got.Seg != 2 {
		t.Fatalf("oldest retained = %d after advancing lease to 2, want 2", got.Seg)
	}

	// Released: the frontier is the snapshot segment alone.
	lease.Release()
	if _, _, err := j.Prune(); err != nil {
		t.Fatal(err)
	}
	st = j.RetainStats()
	if got, _, _ := OldestCursor(dir); got.Seg != st.SnapshotSeg {
		t.Fatalf("oldest retained = %d after release, want snapshot seg %d", got.Seg, st.SnapshotSeg)
	}

	// Nil lease and double release are no-ops.
	var nilLease *Lease
	nilLease.Advance(Cursor{Seg: 9})
	nilLease.Release()
	lease.Release()
}

func TestLeaseNeverMovesBackward(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	l := j.AcquireLease(Cursor{Seg: 3})
	l.Advance(Cursor{Seg: 1})
	if floor, ok := j.LeaseFloor(); !ok || floor != 3 {
		t.Fatalf("backward Advance moved the floor: %d (ok=%v), want 3", floor, ok)
	}
	l.Advance(Cursor{Seg: 5})
	if floor, ok := j.LeaseFloor(); !ok || floor != 5 {
		t.Fatalf("forward Advance: floor %d (ok=%v), want 5", floor, ok)
	}
	l.Release()
	if _, ok := j.LeaseFloor(); ok {
		t.Fatal("floor still present after Release")
	}
}

// TestPruneVsReaderRace races concurrent journal readers (ReadFrames and
// ValidateCursor, the replication streamer's two entry points) against
// snapshot-then-prune cycles. A reader that loses the race must observe a
// clean ErrCursorGone — never a torn read, a decode failure, or a raw
// filesystem error.
func TestPruneVsReaderRace(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncNone, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	for round := 0; round < 40; round++ {
		base := j.DurableCursor().Seg
		fillSegments(t, j, base+3)
		if err := j.Sync(); err != nil {
			t.Fatal(err)
		}
		start, has, err := OldestCursor(dir)
		if err != nil || !has {
			t.Fatalf("OldestCursor: %v has=%v", err, has)
		}
		durable := j.DurableCursor()

		var wg sync.WaitGroup
		errs := make(chan error, 4)
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := ReadFrames(dir, start, durable, func(fr Frame) error {
					payload, _, perr := ParseFrame(fr.Raw)
					if perr != nil {
						return fmt.Errorf("torn frame at %d/%d: %w", fr.Seg, fr.Off, perr)
					}
					if _, derr := DecodeRecord(payload); derr != nil {
						return fmt.Errorf("undecodable frame at %d/%d: %w", fr.Seg, fr.Off, derr)
					}
					return nil
				})
				if err != nil && !errors.Is(err, ErrCursorGone) {
					errs <- fmt.Errorf("ReadFrames: %w", err)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := ValidateCursor(dir, start, 0)
			if err != nil && !errors.Is(err, ErrCursorGone) && !errors.Is(err, ErrCursorInvalid) {
				errs <- fmt.Errorf("ValidateCursor: %w", err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := j.Snapshot([]byte(`{"round":1}`)); err != nil {
				errs <- fmt.Errorf("Snapshot: %w", err)
			}
		}()
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}

// TestPruneVsReaderLeaseHeld is the lease-held variant: with the reader's
// start pinned by a lease, concurrent snapshot-then-prune must leave the
// reader entirely untouched — every frame readable, no ErrCursorGone at all.
func TestPruneVsReaderLeaseHeld(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncNone, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	for round := 0; round < 40; round++ {
		base := j.DurableCursor().Seg
		fillSegments(t, j, base+3)
		if err := j.Sync(); err != nil {
			t.Fatal(err)
		}
		start, has, err := OldestCursor(dir)
		if err != nil || !has {
			t.Fatalf("OldestCursor: %v has=%v", err, has)
		}
		durable := j.DurableCursor()
		lease := j.AcquireLease(start)

		var wg sync.WaitGroup
		errs := make(chan error, 2)
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			_, err := ReadFrames(dir, start, durable, func(Frame) error { n++; return nil })
			if err != nil {
				errs <- fmt.Errorf("lease-held reader failed: %w", err)
			} else if n == 0 {
				errs <- errors.New("lease-held reader saw no frames")
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := j.Snapshot([]byte(`{"round":1}`)); err != nil {
				errs <- fmt.Errorf("Snapshot: %w", err)
			}
		}()
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		// The pinned suffix must still be on disk.
		if got, _, _ := OldestCursor(dir); got.Seg > start.Seg {
			t.Fatalf("round %d: prune crossed the lease floor (oldest %d > pinned %d)",
				round, got.Seg, start.Seg)
		}
		lease.Release()
		if _, _, err := j.Prune(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRetainStatsAfterReopen(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncAlways, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	fillSegments(t, j, 3)
	if err := j.Snapshot([]byte(`{"s":1}`)); err != nil {
		t.Fatal(err)
	}
	stBefore := j.RetainStats()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Closed journal: the sealed active segment is still accounted for.
	stClosed := j.RetainStats()
	files, bytes := diskFootprint(t, dir)
	if stClosed.Segments != files || stClosed.TotalBytes != bytes {
		t.Fatalf("closed stats (%d segs, %d B) disagree with disk (%d files, %d B)",
			stClosed.Segments, stClosed.TotalBytes, files, bytes)
	}

	j2, _, err := Open(dir, Options{Fsync: FsyncAlways, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st := j2.RetainStats()
	files, bytes = diskFootprint(t, dir)
	if st.Segments != files || st.TotalBytes != bytes {
		t.Fatalf("reopened stats (%d segs, %d B) disagree with disk (%d files, %d B)",
			st.Segments, st.TotalBytes, files, bytes)
	}
	if st.SnapshotSeg != stBefore.SnapshotSeg {
		t.Fatalf("reopen lost the snapshot segment: %d, want %d", st.SnapshotSeg, stBefore.SnapshotSeg)
	}
}
