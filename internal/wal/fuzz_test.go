package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeRecord hardens the record decoder: arbitrary payload bytes must
// decode or error, never panic, and a successful decode must round-trip
// through the encoder back to identical bytes (the journal's self-check
// that no field is silently dropped or reinterpreted).
func FuzzDecodeRecord(f *testing.F) {
	for _, r := range sampleRecords() {
		payload, err := encode(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(KindDecision)})
	f.Add([]byte{byte(KindSnapshot)})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRecord(data)
		if err != nil {
			return
		}
		enc, err := encode(nil, r)
		if err != nil {
			t.Fatalf("decoded record failed to re-encode: %+v: %v", r, err)
		}
		back, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("re-encoded record failed to decode: %v", err)
		}
		// Compare via the encoding, not the structs: float fields may carry
		// NaN (any bit pattern decodes), and NaN != NaN under DeepEqual
		// while the byte round-trip is still exact.
		enc2, err := encode(nil, back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip changed record bytes:\n got %x\nwant %x", enc2, enc)
		}
	})
}

// encodeAll concatenates the payload encodings of recs.
func encodeAll(t *testing.T, recs []Record) []byte {
	t.Helper()
	var out []byte
	for _, r := range recs {
		enc, err := encode(nil, r)
		if err != nil {
			t.Fatalf("recovered record failed to encode: %+v: %v", r, err)
		}
		out = append(out, enc...)
	}
	return out
}

// FuzzRecoverSegment feeds arbitrary bytes as a segment file: Recover must
// either restore a valid prefix or truncate — never panic, loop forever, or
// fail to boot. This is the acceptance property for corrupt data dirs.
func FuzzRecoverSegment(f *testing.F) {
	// Seed with a real segment.
	dir := f.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if _, err := j.Append(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	segs, _ := segments(dir)
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)-3]) // torn tail
	f.Add([]byte(magic + "\x01"))
	f.Add([]byte(magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tmp := t.TempDir()
		if err := os.WriteFile(filepath.Join(tmp, segmentName(0)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(tmp)
		if err != nil {
			t.Fatalf("recovery must truncate, not fail: %v", err)
		}
		// Whatever survived, the directory must now be clean: a second scan
		// reports no corruption and the identical logical state.
		rec2, err := Recover(tmp)
		if err != nil {
			t.Fatalf("second recovery failed: %v", err)
		}
		if rec2.Truncated {
			t.Fatal("second recovery still reports corruption")
		}
		// Compare tails via the encoding (NaN-safe; see FuzzDecodeRecord).
		if !bytes.Equal(encodeAll(t, rec.Tail), encodeAll(t, rec2.Tail)) || string(rec.Snapshot) != string(rec2.Snapshot) {
			t.Fatal("recovery is not idempotent after truncation")
		}
		// And the journal must accept appends on top of it.
		j, _, err := Open(tmp, Options{Fsync: FsyncNone})
		if err != nil {
			t.Fatalf("journal failed to open after recovery: %v", err)
		}
		if _, err := j.Append(Record{Kind: KindCycleClose}); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
