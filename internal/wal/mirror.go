package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ErrMirrorGap reports a replicated frame that does not continue the
// mirrored tail — a skipped or repeated position. The mirror's owner must
// discard its local copy and re-seed from a snapshot; patching a gap locally
// would silently diverge from the source journal.
var ErrMirrorGap = errors.New("wal: replicated frame does not continue the mirrored tail")

// Mirror maintains a byte-for-byte replica of a journal directory from a
// stream of raw frames (see Frame). It is the follower half of log
// shipping: frames append to the same segment files, at the same offsets,
// with the same headers as the source journal, so after any restart the
// mirror's own Recover yields the exact resume cursor. There is no group
// commit — Sync is explicit and the owner chooses the cadence. Not safe for
// concurrent use; the replication client owns it from one goroutine.
type Mirror struct {
	dir   string
	f     *os.File
	seg   int
	off   int64
	dirty bool
	open  bool
}

// OpenMirror opens dir for mirroring with its tail at cursor at. A zero
// cursor means the directory is empty (the first frame creates the first
// segment); otherwise the segment file must exist with exactly at.Off bytes
// — anything else means the local copy has diverged and the caller should
// wipe and re-seed.
func OpenMirror(dir string, at Cursor) (*Mirror, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating mirror dir: %w", err)
	}
	m := &Mirror{dir: dir}
	if at.IsZero() {
		return m, nil
	}
	path := filepath.Join(dir, segmentName(at.Seg))
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("%w: resume segment %d missing", ErrMirrorGap, at.Seg)
	}
	if info.Size() != at.Off {
		return nil, fmt.Errorf("%w: resume segment %d holds %d bytes, cursor says %d",
			ErrMirrorGap, at.Seg, info.Size(), at.Off)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: opening mirror segment: %w", err)
	}
	m.f, m.seg, m.off, m.open = f, at.Seg, at.Off, true
	return m, nil
}

// Append persists one replicated frame, verifying cursor continuity and the
// frame's CRC, and returns the verified record payload. The frame must land
// exactly at the mirrored tail, or at the start of a later segment (the
// source rolled); anything else is ErrMirrorGap.
func (m *Mirror) Append(fr Frame) ([]byte, error) {
	payload, _, err := ParseFrame(fr.Raw)
	if err != nil {
		return nil, err
	}
	switch {
	case m.open && fr.Seg == m.seg && fr.Off == m.off:
		// Sequential append to the active mirrored segment.
	case fr.Off == headerSize && (!m.open || fr.Seg > m.seg):
		// The source rolled (or this is the first frame): seal the old
		// file and start the new segment with a fresh header.
		if err := m.roll(fr.Seg); err != nil {
			return nil, err
		}
	default:
		have := Cursor{Seg: m.seg, Off: m.off}
		if !m.open {
			have = Cursor{}
		}
		return nil, fmt.Errorf("%w: frame at %d/%d, tail at %v", ErrMirrorGap, fr.Seg, fr.Off, have)
	}
	if _, err := m.f.Write(fr.Raw); err != nil {
		return nil, fmt.Errorf("wal: mirror write: %w", err)
	}
	m.off += int64(len(fr.Raw))
	m.dirty = true
	return payload, nil
}

// roll seals the active mirrored segment and creates segment seg with a
// journal header, syncing the directory so the new file survives a crash.
func (m *Mirror) roll(seg int) error {
	if m.open {
		if err := m.Sync(); err != nil {
			return err
		}
		if err := m.f.Close(); err != nil {
			return err
		}
		m.open = false
	}
	f, err := os.OpenFile(filepath.Join(m.dir, segmentName(seg)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating mirror segment: %w", err)
	}
	if _, err := f.WriteString(magic); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write([]byte{version}); err != nil {
		f.Close()
		return err
	}
	m.f, m.seg, m.off, m.open, m.dirty = f, seg, headerSize, true, true
	return syncDir(m.dir)
}

// Cursor returns the mirrored tail position (zero before the first frame).
func (m *Mirror) Cursor() Cursor {
	if !m.open {
		return Cursor{}
	}
	return Cursor{Seg: m.seg, Off: m.off}
}

// Sync forces mirrored bytes to stable storage.
func (m *Mirror) Sync() error {
	if !m.open || !m.dirty {
		return nil
	}
	if err := m.f.Sync(); err != nil {
		return err
	}
	m.dirty = false
	return nil
}

// Close syncs and closes the active mirrored segment. Idempotent.
func (m *Mirror) Close() error {
	if !m.open {
		return nil
	}
	err := m.Sync()
	if cerr := m.f.Close(); err == nil {
		err = cerr
	}
	m.open = false
	return err
}
