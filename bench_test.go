// Root-level benchmark harness: one benchmark per table/figure of the
// paper's evaluation plus the ablations called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates its experiment end to end (synthetic data →
// detection → game solving), so ns/op here is the cost of reproducing the
// artifact, and the per-decision benchmarks (BenchmarkOSSPDecision*) map
// directly onto the paper's ≈20 ms/alert runtime claim.
package sag_test

import (
	"io"
	"math/rand"
	"testing"
	"time"

	sag "github.com/auditgames/sag"
	"github.com/auditgames/sag/internal/alerts"
	"github.com/auditgames/sag/internal/emr"
	"github.com/auditgames/sag/internal/experiments"
	"github.com/auditgames/sag/internal/logstore"
	"github.com/auditgames/sag/internal/lp"
	"github.com/auditgames/sag/internal/sim"
)

// benchScale keeps the end-to-end experiment benchmarks fast while still
// covering multiple groups.
func benchScale() experiments.Scale {
	return experiments.Scale{Days: 10, HistoryDays: 8, BackgroundPerDay: 100, PairsPerKind: 60, Seed: 2017}
}

// BenchmarkTable1DailyStats regenerates Table 1 (synthetic world → access
// logs → rules engine → daily stats).
func BenchmarkTable1DailyStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Render regenerates Table 2 (payoff table).
func BenchmarkTable2Render(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2().Render(io.Discard)
	}
}

// BenchmarkFigure2SingleType regenerates the single-type utility series
// (paper Figure 2: Same Last Name, budget 20).
func BenchmarkFigure2SingleType(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Figure2(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if bad := rep.ShapeChecks(); len(bad) != 0 {
			b.Fatalf("shape violations: %v", bad)
		}
	}
}

// BenchmarkFigure3MultiType regenerates the multi-type utility series
// (paper Figure 3: 7 types, budget 50).
func BenchmarkFigure3MultiType(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Figure3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if bad := rep.ShapeChecks(); len(bad) != 0 {
			b.Fatalf("shape violations: %v", bad)
		}
	}
}

// newBenchEngine builds a 7-type OSSP engine against a fixed estimator for
// per-decision latency measurements. workers follows Instance.SetWorkers
// (0 = shared pool, 1 = sequential); cache is the engine's decision cache.
func newBenchEngine(b *testing.B, useLP bool, workers int, cache sag.CacheConfig) *sag.Engine {
	b.Helper()
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		b.Fatal(err)
	}
	inst.SetWorkers(workers)
	rates := []float64{196.57, 29.02, 140.46, 10.84, 25.43, 15.14, 43.27}
	eng, err := sag.NewEngine(sag.EngineConfig{
		Instance: inst,
		Budget:   1e9, // effectively unlimited so every iteration sees the same state
		Estimator: sag.EstimatorFunc(func(time.Duration) ([]float64, error) {
			out := make([]float64, len(rates))
			copy(out, rates)
			return out, nil
		}),
		Policy:         sag.PolicyOSSP,
		Rand:           rand.New(rand.NewSource(1)),
		UseLPSignaling: useLP,
		Cache:          cache,
	})
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkOSSPDecision measures one full per-alert decision (online SSE +
// closed-form OSSP) with the parallel candidate fan-out — the paper's
// runtime claim (≈20 ms on their laptop). This is the benchmark the CI
// regression gate watches.
func BenchmarkOSSPDecision(b *testing.B) {
	eng := newBenchEngine(b, false, 0, sag.CacheConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Process(sag.Alert{Type: i % 7, Time: 9 * time.Hour}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOSSPDecisionSequential is the same decision with the candidate
// LPs solved one at a time — the baseline the parallel speedup is measured
// against.
func BenchmarkOSSPDecisionSequential(b *testing.B) {
	eng := newBenchEngine(b, false, 1, sag.CacheConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Process(sag.Alert{Type: i % 7, Time: 9 * time.Hour}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOSSPDecisionCached adds the quantized decision cache: the fixed
// estimator and coarse budget quantum keep the game state in one bucket per
// type, so steady state is all hits — the upper bound of what caching buys.
func BenchmarkOSSPDecisionCached(b *testing.B) {
	eng := newBenchEngine(b, false, 0, sag.CacheConfig{Size: 64, BudgetQuantum: 1e6})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Process(sag.Alert{Type: i % 7, Time: 9 * time.Hour}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(100*eng.CacheStats().HitRate(), "hit%")
}

// BenchmarkOSSPDecisionWithDeadline measures the hardened decision path:
// context plumbing, the per-decision deadline timer, and the armed fallback
// ladder. The deadline is far above the steady-state solve time, so ns/op
// is the bounded path's overhead over BenchmarkOSSPDecision, not the cost
// of degrading; the degraded% metric confirms the ladder stayed cold.
func BenchmarkOSSPDecisionWithDeadline(b *testing.B) {
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		b.Fatal(err)
	}
	rates := []float64{196.57, 29.02, 140.46, 10.84, 25.43, 15.14, 43.27}
	eng, err := sag.NewEngine(sag.EngineConfig{
		Instance: inst,
		Budget:   1e9,
		Estimator: sag.EstimatorFunc(func(time.Duration) ([]float64, error) {
			out := make([]float64, len(rates))
			copy(out, rates)
			return out, nil
		}),
		Policy:           sag.PolicyOSSP,
		Rand:             rand.New(rand.NewSource(1)),
		DecisionDeadline: 250 * time.Millisecond,
		Fallback:         true,
	})
	if err != nil {
		b.Fatal(err)
	}
	degraded := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := eng.Process(sag.Alert{Type: i % 7, Time: 9 * time.Hour})
		if err != nil {
			b.Fatal(err)
		}
		if d.Fallback.Degraded() {
			degraded++
		}
	}
	b.StopTimer()
	b.ReportMetric(100*float64(degraded)/float64(b.N), "degraded%")
}

// BenchmarkOSSPDecisionLP is the same decision with LP (3) instead of the
// Theorem 3 closed form (ablation A3's runtime arm).
func BenchmarkOSSPDecisionLP(b *testing.B) {
	eng := newBenchEngine(b, true, 0, sag.CacheConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Process(sag.Alert{Type: i % 7, Time: 9 * time.Hour}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOSSPClosedFormVsLP measures just the signaling stage both ways
// (ablation A3's value-parity arm lives in the signaling tests).
func BenchmarkOSSPClosedFormVsLP(b *testing.B) {
	pf := sag.Table2Payoffs()[1]
	b.Run("closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sag.SolveOSSP(pf, 0.1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sag.SolveOSSPLP(pf, 0.1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOnlineSSESolve measures one LP (2) multiple-LP solve over 7
// types.
func BenchmarkOnlineSSESolve(b *testing.B) {
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		b.Fatal(err)
	}
	futures := []sag.Poisson{
		{Lambda: 196.57}, {Lambda: 29.02}, {Lambda: 140.46}, {Lambda: 10.84},
		{Lambda: 25.43}, {Lambda: 15.14}, {Lambda: 43.27},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sag.SolveOnlineSSE(inst, 50, futures); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRollback regenerates ablation A1 (rollback on/off).
func BenchmarkAblationRollback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRollback(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBudget regenerates ablation A2 (budget sweep).
func BenchmarkAblationBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBudget(benchScale(), []float64{10, 20, 40}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEstimator regenerates ablation A4 (coverage models).
func BenchmarkAblationEstimator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationEstimator(nil, nil)
	}
}

// BenchmarkAblationRobust regenerates ablation A5 (price of robustness).
func BenchmarkAblationRobust(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRobust(1, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBayesianOSSP measures the Bayesian solver's 4^m enumeration for
// a three-type prior.
func BenchmarkBayesianOSSP(b *testing.B) {
	def := sag.DefenderSide{Covered: 100, Uncovered: -400}
	types := []sag.AttackerType{
		{Prior: 0.5, Covered: -2000, Uncovered: 400},
		{Prior: 0.3, Covered: -300, Uncovered: 800},
		{Prior: 0.2, Covered: -5000, Uncovered: 200},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sag.SolveBayesianOSSP(def, types, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiAttackerSSE measures the joint best-response enumeration
// for two capability-restricted attackers over 7 types.
func BenchmarkMultiAttackerSSE(b *testing.B) {
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		b.Fatal(err)
	}
	futures := []sag.Poisson{
		{Lambda: 196.57}, {Lambda: 29.02}, {Lambda: 140.46}, {Lambda: 10.84},
		{Lambda: 25.43}, {Lambda: 15.14}, {Lambda: 43.27},
	}
	caps := [][]int{{0, 1, 2}, {3, 4, 5, 6}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sag.SolveMultiAttackerSSE(inst, 50, futures, caps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResourceSSE measures the multi-resource equilibrium (two
// classes over 7 types).
func BenchmarkResourceSSE(b *testing.B) {
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		b.Fatal(err)
	}
	futures := []sag.Poisson{
		{Lambda: 196.57}, {Lambda: 29.02}, {Lambda: 140.46}, {Lambda: 10.84},
		{Lambda: 25.43}, {Lambda: 15.14}, {Lambda: 43.27},
	}
	classes := []sag.ResourceClass{
		{Name: "junior", Budget: 40, CanAudit: []bool{true, true, true, false, false, false, false}, CostMultiplier: 1},
		{Name: "senior", Budget: 10, CostMultiplier: 1.5},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sag.SolveResourceSSE(inst, classes, futures); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNSignalOSSP measures the n-signal enumeration at n=4.
func BenchmarkNSignalOSSP(b *testing.B) {
	pf := sag.Table2Payoffs()[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sag.SolveNSignalOSSP(pf, 0.1, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogstoreWrite measures access-event append throughput of the
// binary retention store (the paper's volume is ≈192k events/day).
func BenchmarkLogstoreWrite(b *testing.B) {
	dir := b.TempDir()
	w, err := logstore.NewWriter(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	ev := emr.AccessEvent{Day: 3, Time: 9 * time.Hour, EmployeeID: 123, PatientID: 4567}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.PatientID = i
		if err := w.Append(ev); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkLogstoreScan measures full-store scan throughput.
func BenchmarkLogstoreScan(b *testing.B) {
	dir := b.TempDir()
	w, err := logstore.NewWriter(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	const n = 100_000
	ev := emr.AccessEvent{Day: 1, Time: 8 * time.Hour}
	for i := 0; i < n; i++ {
		ev.EmployeeID = i % 4000
		ev.PatientID = i % 30000
		if err := w.Append(ev); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	store, err := logstore.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count, err := store.Count()
		if err != nil || count != n {
			b.Fatalf("count=%d err=%v", count, err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkDetectionScan measures the rules engine's event throughput — the
// rate the real-time alerting layer must sustain.
func BenchmarkDetectionScan(b *testing.B) {
	world, err := emr.NewWorld(emr.WorldConfig{Seed: 9, Employees: 400, Patients: 2000})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := emr.NewGenerator(world, emr.GeneratorConfig{Seed: 9, BackgroundPerDay: 20000, PairsPerKind: 100})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := alerts.NewEngine(world, alerts.NewTable1Taxonomy())
	if err != nil {
		b.Fatal(err)
	}
	day := gen.Day(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Scan(day); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(day))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkGeneratorDay measures synthetic workload generation speed.
func BenchmarkGeneratorDay(b *testing.B) {
	world, err := emr.NewWorld(emr.WorldConfig{Seed: 9, Employees: 400, Patients: 2000})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := emr.NewGenerator(world, emr.GeneratorConfig{Seed: 9, BackgroundPerDay: 20000, PairsPerKind: 100})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(gen.Day(i)) == 0 {
			b.Fatal("empty day")
		}
	}
}

// BenchmarkLPSolve measures the raw simplex on an LP (2)-shaped program.
func BenchmarkLPSolve(b *testing.B) {
	build := func() *lp.Problem {
		p := lp.New(lp.Maximize, 7)
		obj := make([]float64, 7)
		obj[0] = 0.5
		_ = p.SetObjective(obj)
		for j := 0; j < 7; j++ {
			_ = p.SetBounds(j, 0, 50)
		}
		for j := 1; j < 7; j++ {
			row := make([]float64, 7)
			row[0] = -2400.0 / 196.57
			row[j] = 2650.0 / 140.46
			_ = p.AddConstraint(row, lp.GE, -50)
		}
		ones := []float64{1, 1, 1, 1, 1, 1, 1}
		_ = p.AddConstraint(ones, lp.LE, 50)
		return p
	}
	prob := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.Solve(prob); err != nil {
			b.Fatal(err)
		}
	}
}
