module github.com/auditgames/sag

go 1.22
