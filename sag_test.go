package sag_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	sag "github.com/auditgames/sag"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	pf := sag.Table2Payoffs()[1]
	scheme, err := sag.SolveOSSP(pf, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if err := scheme.Validate(0.10); err != nil {
		t.Fatal(err)
	}
	if scheme.WarnProbability() <= 0 {
		t.Fatal("type-1 OSSP at θ=0.1 should warn with positive probability")
	}
	// Cross-check against the LP path.
	lpScheme, err := sag.SolveOSSPLP(pf, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scheme.DefenderUtility-lpScheme.DefenderUtility) > 1e-6 {
		t.Fatalf("closed form %g vs LP %g", scheme.DefenderUtility, lpScheme.DefenderUtility)
	}
}

func TestFacadeEngineEndToEnd(t *testing.T) {
	pays := []sag.Payoff{sag.Table2Payoffs()[1], sag.Table2Payoffs()[3]}
	inst, err := sag.NewInstance(pays, sag.UniformCost(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Historical records: 2 types, 5 days, simple morning/afternoon mix.
	var recs []sag.HistoryRecord
	for d := 0; d < 5; d++ {
		for i := 0; i < 30; i++ {
			recs = append(recs, sag.HistoryRecord{
				Day:  d,
				Type: i % 2,
				Time: time.Duration(8+i%9) * time.Hour,
			})
		}
	}
	curves, err := sag.NewCurves(recs, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := sag.NewRollback(curves, sag.DefaultRollbackThreshold)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sag.NewEngine(sag.EngineConfig{
		Instance:  inst,
		Budget:    10,
		Estimator: rb,
		Policy:    sag.PolicyOSSP,
		Rand:      rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		d, err := eng.Process(sag.Alert{Type: i % 2, Time: time.Duration(8+i%9) * time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		if d.OSSPUtility < d.SSEUtility-1e-7 {
			t.Fatalf("alert %d: signaling hurt (%g < %g)", i, d.OSSPUtility, d.SSEUtility)
		}
	}
	sum := eng.Summary()
	if sum.Alerts != 20 || sum.BudgetSpent <= 0 {
		t.Fatalf("summary %+v", sum)
	}
}

func TestFacadeExtensions(t *testing.T) {
	// Bayesian wrapper.
	def := sag.DefenderSide{Covered: 100, Uncovered: -400}
	types := []sag.AttackerType{
		{Prior: 0.6, Covered: -2000, Uncovered: 400},
		{Prior: 0.4, Covered: -500, Uncovered: 800},
	}
	b, err := sag.SolveBayesianOSSP(def, types, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.QuitsAfterWarn) != 2 {
		t.Fatalf("Bayesian scheme %+v", b)
	}

	// Robust wrapper + premium.
	pf := sag.Table2Payoffs()[1]
	r, err := sag.SolveRobustOSSP(pf, 0.1, 50)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := sag.SolveOSSP(pf, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if r.DefenderUtility > exact.DefenderUtility+1e-9 {
		t.Fatal("robust scheme cannot beat the exact OSSP")
	}
	prem, err := sag.RobustnessPremium(pf, 0.1, 50)
	if err != nil || prem < 0 {
		t.Fatalf("premium = %g, %v", prem, err)
	}

	// Multi-attacker wrapper.
	inst, err := sag.NewInstance(
		[]sag.Payoff{sag.Table2Payoffs()[1], sag.Table2Payoffs()[3]},
		sag.UniformCost(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	m, err := sag.SolveMultiAttackerSSE(inst, 20, []sag.Poisson{{Lambda: 100}, {Lambda: 50}}, [][]int{nil, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.BestTypes) != 2 || m.BestTypes[1] != 1 {
		t.Fatalf("multi result %+v", m)
	}

	// Rate rollback wrapper.
	var recs []sag.HistoryRecord
	for d := 0; d < 3; d++ {
		for i := 0; i < 20; i++ {
			recs = append(recs, sag.HistoryRecord{Day: d, Type: 0, Time: time.Duration(8+i%8) * time.Hour})
		}
	}
	curves, err := sag.NewCurves(recs, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := sag.NewRateRollback(curves, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rates, err := rr.FutureRates(9 * time.Hour); err != nil || len(rates) != 1 {
		t.Fatalf("rate rollback rates %v, %v", rates, err)
	}
}

func TestFacadeResourceAndNSignal(t *testing.T) {
	inst, err := sag.NewInstance([]sag.Payoff{sag.Table2Payoffs()[1]}, sag.UniformCost(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sag.SolveResourceSSE(inst, []sag.ResourceClass{
		{Name: "staff", Budget: 20, CostMultiplier: 1},
	}, []sag.Poisson{{Lambda: 200}})
	if err != nil {
		t.Fatal(err)
	}
	base, err := sag.SolveOnlineSSE(inst, 20, []sag.Poisson{{Lambda: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.DefenderUtility-base.DefenderUtility) > 1e-6 {
		t.Fatalf("resource %g vs base %g", res.DefenderUtility, base.DefenderUtility)
	}

	pf := sag.Table2Payoffs()[1]
	three, err := sag.SolveNSignalOSSP(pf, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	binary, err := sag.SolveOSSP(pf, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(three.DefenderUtility-binary.DefenderUtility) > 1e-6 {
		t.Fatalf("3-signal %g vs binary %g (two signals should suffice)",
			three.DefenderUtility, binary.DefenderUtility)
	}
}

func TestFacadeSSESolvers(t *testing.T) {
	inst, err := sag.NewInstance([]sag.Payoff{sag.Table2Payoffs()[1]}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	online, err := sag.SolveOnlineSSE(inst, 20, []sag.Poisson{{Lambda: 200}})
	if err != nil {
		t.Fatal(err)
	}
	offline, err := sag.SolveOfflineSSE(inst, 20, []float64{200})
	if err != nil {
		t.Fatal(err)
	}
	// With λ = count = 200 the two coverage models nearly coincide.
	if math.Abs(online.Coverage[0]-offline.Coverage[0]) > 0.01 {
		t.Fatalf("online %g vs offline %g coverage", online.Coverage[0], offline.Coverage[0])
	}
}
