// Server-level benchmarks: decision throughput through the full HTTP
// handler path (detector → engine → JSON), serial and at 8 concurrent
// clients.
//
// The concurrent pair injects a fixed-latency solver (SSESolve seam), so
// ns/op measures whether slow solves OVERLAP — the property the old global
// server lock destroyed — independent of core count and LP scheduling
// noise. BenchmarkServerConcurrentAccess is watched by the CI regression
// gate: re-serializing the hot path collapses it to the Serialized arm's
// throughput (≈ benchServerClients× slower), far beyond the gate threshold.
package sag_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	sag "github.com/auditgames/sag"
	"github.com/auditgames/sag/internal/admit"
	"github.com/auditgames/sag/internal/alerts"
	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/emr"
	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/server"
	"github.com/auditgames/sag/internal/sim"
)

// benchServerClients is the concurrency level of the concurrent benchmarks —
// the "8 concurrent clients" serving shape.
const benchServerClients = 8

// benchSolveLatency is the injected per-solve latency: a stand-in for the
// paper's ≈20 ms/alert LP time, scaled down to keep benchmark runs short.
const benchSolveLatency = 2 * time.Millisecond

// slowVacuousSolver sleeps benchSolveLatency and returns a vacuous
// equilibrium. Vacuous decisions charge nothing, so the budget never moves,
// every request sees an identical engine state, and throughput differences
// come purely from whether solves overlap — no optimistic-commit retries,
// no cache interplay.
func slowVacuousSolver(ctx context.Context, inst *game.Instance, budget float64, futures []dist.Poisson) (*game.Result, error) {
	select {
	case <-time.After(benchSolveLatency):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return &game.Result{BestType: -1, Coverage: make([]float64, inst.NumTypes())}, nil
}

// instantVacuousSolver returns a vacuous equilibrium with no delay; used
// when a benchmark wants the latency somewhere other than the solve stage.
func instantVacuousSolver(ctx context.Context, inst *game.Instance, budget float64, futures []dist.Poisson) (*game.Result, error) {
	return &game.Result{BestType: -1, Coverage: make([]float64, inst.NumTypes())}, nil
}

// newBenchServerHandler builds the serving stack over the small planted
// world. solve overrides the SSE solver (nil = the real LP pipeline);
// estimate overrides the estimator (nil = instant fixed Table 1 rates).
func newBenchServerHandler(b *testing.B, cache sag.CacheConfig, solve sag.SSESolveFunc, estimate func(time.Duration) ([]float64, error)) (http.Handler, int, int) {
	return newBenchServerHandlerMod(b, cache, solve, estimate, nil)
}

// newBenchServerHandlerMod is newBenchServerHandler with a Config hook, for
// benchmarks that need non-default serving knobs (admission control).
func newBenchServerHandlerMod(b *testing.B, cache sag.CacheConfig, solve sag.SSESolveFunc, estimate func(time.Duration) ([]float64, error), mod func(*server.Config)) (http.Handler, int, int) {
	b.Helper()
	world, err := emr.NewWorld(emr.WorldConfig{Seed: 5, Employees: 30, Patients: 100, Departments: 4})
	if err != nil {
		b.Fatal(err)
	}
	bgE, bgP := world.NumEmployees(), world.NumPatients()
	if _, err := emr.NewGenerator(world, emr.GeneratorConfig{Seed: 5, PairsPerKind: 3, BackgroundPerDay: 1}); err != nil {
		b.Fatal(err)
	}
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		b.Fatal(err)
	}
	rates := []float64{196.57, 29.02, 140.46, 10.84, 25.43, 15.14, 43.27}
	if estimate == nil {
		estimate = func(time.Duration) ([]float64, error) {
			out := make([]float64, len(rates))
			copy(out, rates)
			return out, nil
		}
	}
	cfg := server.Config{
		World:     world,
		Taxonomy:  alerts.NewTable1Taxonomy(),
		TypeIDs:   sim.AllTable1TypeIDs(),
		Instance:  inst,
		Budget:    1e9,
		Estimator: sag.EstimatorFunc(estimate),
		Seed:      1,
		Cache:     cache,
		Clock:     func() time.Duration { return 9 * time.Hour },
		SSESolve:  solve,
	}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return srv.Handler(), bgE, bgP
}

// accessBodies pre-encodes one request per planted relation kind so the
// benchmark exercises all seven alert types (distinct decision states — no
// single-flight coalescing) without JSON encoding on the hot path.
func accessBodies(bgE, bgP int) [][]byte {
	bodies := make([][]byte, 7)
	for k := 0; k < 7; k++ {
		// Pairs are planted kind by kind, PairsPerKind (3) at a time; the
		// first pair of kind k is (bgE+3k, bgP+3k).
		body, _ := json.Marshal(server.AccessRequest{EmployeeID: bgE + 3*k, PatientID: bgP + 3*k})
		bodies[k] = body
	}
	return bodies
}

func doAccess(b *testing.B, h http.Handler, body []byte) {
	req := httptest.NewRequest(http.MethodPost, "/v1/access", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("access status %d: %s", rec.Code, rec.Body.Bytes())
	}
}

// runConcurrentAccess drives b.N requests through h from benchServerClients
// goroutines, each pinned to its own alert type.
func runConcurrentAccess(b *testing.B, h http.Handler, bodies [][]byte) {
	var next atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < benchServerClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body := bodies[w%7]
			for next.Add(1) <= int64(b.N) {
				doAccess(b, h, body)
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// doTenantAccess is doAccess with the request pinned to a tenant.
func doTenantAccess(b *testing.B, h http.Handler, tenant string, body []byte) {
	req := httptest.NewRequest(http.MethodPost, "/v1/access", bytes.NewReader(body))
	req.Header.Set(server.TenantHeader, tenant)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("access status %d: %s", rec.Code, rec.Body.Bytes())
	}
}

// runTenantAccess drives b.N requests from benchServerClients goroutines,
// client w pinned to tenant w%tenants. Every request carries the same body,
// so within one tenant all clients contend for one decision state.
func runTenantAccess(b *testing.B, h http.Handler, body []byte, tenants int) {
	var next atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < benchServerClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("bench-%d", w%tenants)
			for next.Add(1) <= int64(b.N) {
				doTenantAccess(b, h, tenant, body)
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServerMultiTenant is the sharding win, measured. The injected
// latency sits in the ESTIMATOR, the one pipeline stage the engine must
// serialize per tenant (stateful estimators — the paper's knowledge
// rollback — are called under the engine's estimator mutex). One tenant
// therefore pins throughput at ≈ 1/benchSolveLatency no matter how many
// clients; spread across 8 tenants, each tenant estimates independently
// and the same 8-client workload overlaps ≈ 8×. The tenants=8 arm must
// beat tenants=1 by ≥ 4× req/s (≈ 8× in practice). The CI benchgate
// watches both arms.
func BenchmarkServerMultiTenant(b *testing.B) {
	rates := []float64{196.57, 29.02, 140.46, 10.84, 25.43, 15.14, 43.27}
	slowEstimate := func(time.Duration) ([]float64, error) {
		time.Sleep(benchSolveLatency)
		out := make([]float64, len(rates))
		copy(out, rates)
		return out, nil
	}
	for _, tenants := range []int{1, 8} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			h, bgE, bgP := newBenchServerHandler(b, sag.CacheConfig{}, instantVacuousSolver, slowEstimate)
			body := accessBodies(bgE, bgP)[0]
			runTenantAccess(b, h, body, tenants)
		})
	}
}

// serialized wraps h in one global mutex — the locking discipline of the
// pre-PR-4 handler, which held the server mutex across detector, solve, and
// JSON write. Kept as the in-tree baseline the unserialized path is
// measured against.
func serialized(h http.Handler) http.Handler {
	var mu sync.Mutex
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		h.ServeHTTP(w, r)
	})
}

// BenchmarkServerAccess is the single-client baseline on the real pipeline
// (quantized decision cache on, steady state all hits): the latency a lone
// caller sees. Unserializing the hot path must keep this within noise.
func BenchmarkServerAccess(b *testing.B) {
	h, bgE, bgP := newBenchServerHandler(b, sag.CacheConfig{Size: 64, BudgetQuantum: 1e6, RateQuantum: 1}, nil, nil)
	bodies := accessBodies(bgE, bgP)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doAccess(b, h, bodies[i%7])
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServerSlowSolveAccess is the single-client arm of the
// fixed-latency pair: ns/op ≈ benchSolveLatency plus the serving path. The
// concurrent arm must beat this by ≈ benchServerClients×.
func BenchmarkServerSlowSolveAccess(b *testing.B) {
	h, bgE, bgP := newBenchServerHandler(b, sag.CacheConfig{}, slowVacuousSolver, nil)
	bodies := accessBodies(bgE, bgP)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doAccess(b, h, bodies[i%7])
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServerConcurrentAccess: 8 clients, every request a
// benchSolveLatency solve of its own type. Overlapping solves put ns/op at
// ≈ benchSolveLatency/8; a re-serialized hot path puts it back at
// ≈ benchSolveLatency. The CI benchgate watches this benchmark.
func BenchmarkServerConcurrentAccess(b *testing.B) {
	h, bgE, bgP := newBenchServerHandler(b, sag.CacheConfig{}, slowVacuousSolver, nil)
	bodies := accessBodies(bgE, bgP)
	runConcurrentAccess(b, h, bodies)
}

// BenchmarkServerConcurrentAccessSerialized is the same workload behind a
// global handler lock — the pre-PR-4 serving discipline. The ratio of this
// benchmark to BenchmarkServerConcurrentAccess is the unserialization win.
func BenchmarkServerConcurrentAccessSerialized(b *testing.B) {
	h, bgE, bgP := newBenchServerHandler(b, sag.CacheConfig{}, slowVacuousSolver, nil)
	bodies := accessBodies(bgE, bgP)
	runConcurrentAccess(b, serialized(h), bodies)
}

// benchTenantAccess fires one access pinned to tenant and reports the status
// plus whether a Retry-After header came back.
func benchTenantAccess(h http.Handler, tenant string, body []byte) (code int, retryAfter string) {
	req := httptest.NewRequest(http.MethodPost, "/v1/access", bytes.NewReader(body))
	req.Header.Set(server.TenantHeader, tenant)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Result().Header.Get("Retry-After")
}

// BenchmarkServerOverload is the admission-control regression gate: 8
// unpaced greedy clients flood one tenant at several times its admitted rate
// while 3 polite tenants run one closed-loop client each, every decision
// costing a benchSolveLatency solve. b.N counts POLITE requests — ns/op is
// the latency a polite tenant sees while a neighbor floods the box. The
// benchmark fails if the polite tenants are shed more than 5% or if the
// greedy tenant is never shed: either way the fairness property the admit
// layer exists for is gone. Watched by the CI benchgate.
func BenchmarkServerOverload(b *testing.B) {
	h, bgE, bgP := newBenchServerHandlerMod(b, sag.CacheConfig{}, slowVacuousSolver, nil,
		func(cfg *server.Config) {
			cfg.Admission = admit.Config{
				// Rate 600/s with a 2ms solve admits well under the greedy
				// flood (8 clients ≈ 3000+ req/s demand) but well over a
				// single polite closed-loop client (≈ 450 req/s).
				Rate:           600,
				Burst:          60,
				MaxInflight:    8,
				TenantInflight: 2,
				QueueDepth:     32,
				MaxWait:        20 * time.Millisecond,
			}
		})
	body := accessBodies(bgE, bgP)[0]

	const politeTenantsN = 3
	var (
		stop                 atomic.Bool
		politeNext           atomic.Int64
		politeOK, politeShed atomic.Int64
		greedyOK, greedyShed atomic.Int64
	)
	b.ResetTimer()
	var greedyWG sync.WaitGroup
	for w := 0; w < benchServerClients; w++ {
		greedyWG.Add(1)
		go func() {
			defer greedyWG.Done()
			for !stop.Load() {
				if code, _ := benchTenantAccess(h, "greedy", body); code == http.StatusOK {
					greedyOK.Add(1)
				} else {
					greedyShed.Add(1)
				}
			}
		}()
	}
	var politeWG sync.WaitGroup
	for p := 0; p < politeTenantsN; p++ {
		politeWG.Add(1)
		go func(p int) {
			defer politeWG.Done()
			tenant := fmt.Sprintf("polite-%d", p)
			for politeNext.Add(1) <= int64(b.N) {
				if code, _ := benchTenantAccess(h, tenant, body); code == http.StatusOK {
					politeOK.Add(1)
				} else {
					politeShed.Add(1)
				}
			}
		}(p)
	}
	politeWG.Wait()
	stop.Store(true)
	greedyWG.Wait()
	b.StopTimer()

	b.ReportMetric(float64(politeOK.Load())/b.Elapsed().Seconds(), "polite-req/s")
	total := greedyOK.Load() + greedyShed.Load()
	if total > 0 {
		b.ReportMetric(float64(greedyShed.Load())/float64(total), "greedy-shed-ratio")
	}
	if n := politeOK.Load() + politeShed.Load(); n > 0 {
		if ratio := float64(politeShed.Load()) / float64(n); ratio > 0.05 {
			b.Fatalf("polite tenants shed %.1f%% (> 5%%): greedy flood starved polite traffic", 100*ratio)
		}
	}
	// Short calibration runs may finish before the flood saturates the
	// bucket; only a full-length run must observe greedy shedding.
	if b.N >= 1000 && greedyShed.Load() == 0 {
		b.Fatal("greedy tenant was never shed: admission control is not engaging under 5x overload")
	}
}
