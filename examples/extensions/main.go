// Extensions: the paper's three future-work directions, working.
//
// The paper's conclusions name three generalizations: a Bayesian SAG for
// uncertain attacker types, a multi-attacker SAG, and a robust SAG for
// boundedly rational attackers. This library implements all three; this
// example exercises each on the paper's own payoff numbers.
//
// Run with:
//
//	go run ./examples/extensions
package main

import (
	"fmt"
	"log"

	sag "github.com/auditgames/sag"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := bayesian(); err != nil {
		return err
	}
	if err := robust(); err != nil {
		return err
	}
	return multiAttacker()
}

// bayesian: the auditor does not know whether she faces a cautious insider
// (huge penalty if caught) or a reckless one (little to lose). One scheme
// must serve both.
func bayesian() error {
	fmt.Println("== Bayesian SAG: uncertain attacker type ==")
	def := sag.DefenderSide{Covered: 100, Uncovered: -400}
	types := []sag.AttackerType{
		{Prior: 0.8, Covered: -2000, Uncovered: 400}, // cautious (paper's type 1)
		{Prior: 0.2, Covered: -300, Uncovered: 900},  // reckless
	}
	const theta = 0.10
	s, err := sag.SolveBayesianOSSP(def, types, theta)
	if err != nil {
		return err
	}
	fmt.Printf("scheme: p1=%.3f q1=%.3f p0=%.3f q0=%.3f\n", s.P1, s.Q1, s.P0, s.Q0)
	names := []string{"cautious", "reckless"}
	for k := range types {
		fmt.Printf("  %-9s quits on warning: %-5v attacks at all: %-5v utility: %.1f\n",
			names[k], s.QuitsAfterWarn[k], s.Participates[k], s.TypeUtilities[k])
	}
	fmt.Printf("auditor expected utility: %.1f\n\n", s.DefenderUtility)
	return nil
}

// robust: the warning must out-argue not just a perfectly rational
// attacker but one who needs a margin ε before he bothers to quit.
func robust() error {
	fmt.Println("== Robust SAG: boundedly rational attacker ==")
	pf := sag.Table2Payoffs()[1]
	const theta = 0.10
	fmt.Printf("%8s %12s %12s %12s\n", "margin", "exact", "robust", "premium")
	for _, eps := range []float64{0, 50, 150, 300} {
		exact, err := sag.SolveOSSP(pf, theta)
		if err != nil {
			return err
		}
		rob, err := sag.SolveRobustOSSP(pf, theta, eps)
		if err != nil {
			return err
		}
		prem, err := sag.RobustnessPremium(pf, theta, eps)
		if err != nil {
			return err
		}
		fmt.Printf("%8.0f %12.1f %12.1f %12.1f\n", eps, exact.DefenderUtility, rob.DefenderUtility, prem)
	}
	fmt.Println("(the premium is what insurance against irrational proceed-clicks costs)")
	fmt.Println()
	return nil
}

// multiAttacker: two insiders with different capabilities hit the same
// audit budget; the equilibrium splits coverage between their menus.
func multiAttacker() error {
	fmt.Println("== Multi-attacker SAG: capability-restricted insiders ==")
	pays := sag.Table2Payoffs()
	inst, err := sag.NewInstance(
		[]sag.Payoff{pays[1], pays[3], pays[7]},
		sag.UniformCost(3, 1),
	)
	if err != nil {
		return err
	}
	futures := []sag.Poisson{{Lambda: 196.57}, {Lambda: 140.46}, {Lambda: 43.27}}
	names := []string{"Same Last Name", "Neighbor", "LN+Addr+Neighbor"}

	res, err := sag.SolveMultiAttackerSSE(inst, 30, futures, [][]int{
		{0, 1}, // clerk: can only trigger name/neighbor alerts
		{1, 2}, // registrar: address-capable
	})
	if err != nil {
		return err
	}
	fmt.Printf("coverage: ")
	for i, c := range res.Coverage {
		fmt.Printf("%s %.3f  ", names[i], c)
	}
	fmt.Println()
	for i, bt := range res.BestTypes {
		fmt.Printf("attacker %d best response: %s (utility %.1f)\n", i, names[bt], res.AttackerUtilities[i])
	}
	fmt.Printf("auditor total expected utility: %.1f\n", res.DefenderUtility)
	return nil
}
