// Adaptive attacker vs. knowledge rollback.
//
// The paper motivates its "knowledge rollback" trick with a strategic late
// attacker: near the end of the audit cycle the historical data predicts
// almost no future alerts, the naive estimator lets the budget model relax,
// and an attack timed at 11pm slips through with high expected utility.
//
// This example probes the engine as that attacker would: for every hour of
// the day it asks (via Preview, which does not commit state) what the
// attacker's expected utility would be for an alert triggered then — once
// with rollback enabled and once without — and prints the two exposure
// profiles side by side.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	sag "github.com/auditgames/sag"
	"github.com/auditgames/sag/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		totalDays   = 20
		historyDays = 19
		budget      = 20.0
	)
	// Single-type setting (Same Last Name), like the paper's Figure 2.
	ds, err := sim.BuildTable1Pipeline(sim.PipelineConfig{
		Seed:             5,
		Days:             totalDays,
		BackgroundPerDay: 200,
		PairsPerKind:     100,
	}, []int{1})
	if err != nil {
		return err
	}
	curves, err := sag.NewCurves(ds.Records(0, historyDays), ds.NumTypes, historyDays)
	if err != nil {
		return err
	}
	inst, err := sim.Table1Instance([]int{1})
	if err != nil {
		return err
	}

	mkEngine := func(est sag.Estimator) (*sag.Engine, error) {
		return sag.NewEngine(sag.EngineConfig{
			Instance:  inst,
			Budget:    budget,
			Estimator: est,
			Policy:    sag.PolicyOSSP,
			Rand:      rand.New(rand.NewSource(5)),
		})
	}
	rollback, err := sag.NewRollback(curves, sag.DefaultRollbackThreshold)
	if err != nil {
		return err
	}
	withRB, err := mkEngine(rollback)
	if err != nil {
		return err
	}
	withoutRB, err := mkEngine(curves) // raw curves: no rollback
	if err != nil {
		return err
	}

	// Drive both engines through the day's real alert stream, probing the
	// attacker's utility at each full hour before feeding the next alerts.
	testDay := ds.Days[historyDays]
	fmt.Printf("probing attacker exposure hour by hour (%d alerts on the audit day)\n\n", len(testDay))
	fmt.Printf("%-6s %12s %12s | %12s %12s | %12s %12s\n",
		"hour", "atk(with)", "atk(w/out)", "aud(with)", "aud(w/out)", "B(with)", "B(w/out)")

	next := 0
	var worstWith, worstWithout float64
	var lastAudWith, lastAudWithout float64
	for h := 6; h <= 23; h++ {
		at := time.Duration(h) * time.Hour
		// Replay all alerts that arrived before this probe time.
		for next < len(testDay) && testDay[next].Time < at {
			a := testDay[next]
			if _, err := withRB.Process(sag.Alert{Type: a.Type, Time: a.Time}); err != nil {
				return err
			}
			if _, err := withoutRB.Process(sag.Alert{Type: a.Type, Time: a.Time}); err != nil {
				return err
			}
			next++
		}
		probe := sag.Alert{Type: 0, Time: at}
		dWith, err := withRB.Preview(probe)
		if err != nil {
			return err
		}
		dWithout, err := withoutRB.Preview(probe)
		if err != nil {
			return err
		}
		uWith, uWithout := attackerUtility(dWith), attackerUtility(dWithout)
		worstWith = math.Max(worstWith, uWith)
		worstWithout = math.Max(worstWithout, uWithout)
		lastAudWith, lastAudWithout = dWith.OSSPUtility, dWithout.OSSPUtility
		fmt.Printf("%02d:00 %12.1f %12.1f | %12.1f %12.1f | %12.2f %12.2f\n",
			h, uWith, uWithout,
			dWith.OSSPUtility, dWithout.OSSPUtility,
			withRB.RemainingBudget(), withoutRB.RemainingBudget())
	}

	fmt.Printf("\nattacker's best probe: utility %.1f with rollback vs %.1f without\n", worstWith, worstWithout)
	fmt.Printf("auditor's end-of-day utility: %.1f with rollback vs %.1f without\n", lastAudWith, lastAudWithout)
	fmt.Println()
	fmt.Println("What to look for: with the raw estimator the expected-future-volume curve")
	fmt.Println("collapses after the evening rush, so late decisions are computed against a")
	fmt.Println("nearly-empty future. Rollback freezes the estimate at the last healthy")
	fmt.Println("point, which keeps budget consumption steady across the whole day — the")
	fmt.Println("property the paper credits for the non-dropping end-of-day curves in its")
	fmt.Println("Figures 2–3. (This library's Poisson coefficient E[1/max(D,1)] already")
	fmt.Println("softens the naive estimator's collapse — a leftover budget sliver still")
	fmt.Println("buys full coverage of a near-empty tail — so the raw-estimator exploit is")
	fmt.Println("milder here than in the paper's telling; see EXPERIMENTS.md, ablation A1.)")
	return nil
}

// attackerUtility extracts the attacker's expected utility from a previewed
// decision: zero when the game is vacuous or the signaling scheme deters.
func attackerUtility(d *sag.Decision) float64 {
	if d.Vacuous {
		return 0
	}
	return math.Max(0, d.Scheme.AttackerUtility)
}
