// Service: the full client/server loop, in process.
//
// This example stands up the SAG HTTP service (the same code cmd/sagserver
// runs) on an ephemeral port and then plays both sides of the paper's
// deployment story from a client's point of view:
//
//  1. a benign clerk reads an unrelated patient's chart — no alert, no
//     dialog;
//  2. an employee repeatedly opens the record of a patient with their own
//     last name — alerts every time, warnings at the equilibrium rate;
//  3. the employee once abandons a warned access ("Quit") — and from then
//     on every suspicious access they make is flagged and warned, the
//     paper's §4 identity-revelation argument in action;
//  4. the cycle closes and the retrospective audit plan comes back.
//
// Run with:
//
//	go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"github.com/auditgames/sag/internal/alerts"
	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/emr"
	"github.com/auditgames/sag/internal/server"
	"github.com/auditgames/sag/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Build the hospital. The generator plants related employee/patient
	// pairs; the first planted pair shares a last name (our "insider").
	world, err := emr.NewWorld(emr.WorldConfig{Seed: 21, Employees: 40, Patients: 150, Departments: 5})
	if err != nil {
		return err
	}
	insiderEmp, insiderPat := world.NumEmployees(), world.NumPatients()
	if _, err := emr.NewGenerator(world, emr.GeneratorConfig{Seed: 21, PairsPerKind: 3, BackgroundPerDay: 1}); err != nil {
		return err
	}

	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		World:    world,
		Taxonomy: alerts.NewTable1Taxonomy(),
		TypeIDs:  sim.AllTable1TypeIDs(),
		Instance: inst,
		Budget:   50,
		Estimator: core.EstimatorFunc(func(time.Duration) ([]float64, error) {
			return []float64{196.57, 29.02, 140.46, 10.84, 25.43, 15.14, 43.27}, nil
		}),
		Seed:  21,
		Clock: func() time.Duration { return 10 * time.Hour },
	})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("service up at %s\n\n", ts.URL)

	post := func(path string, body, out any) error {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return err
		}
		resp, err := http.Post(ts.URL+path, "application/json", &buf)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if out != nil {
			return json.NewDecoder(resp.Body).Decode(out)
		}
		return nil
	}

	// 1. Benign access.
	var benign server.AccessResponse
	if err := post("/v1/access", server.AccessRequest{EmployeeID: 0, PatientID: 5}, &benign); err != nil {
		return err
	}
	fmt.Printf("clerk reads unrelated chart:        alert=%v warn=%v\n", benign.Alert, benign.Warn)

	// 2. The insider pokes at a relative's record.
	warned := 0
	for i := 0; i < 10; i++ {
		var resp server.AccessResponse
		if err := post("/v1/access", server.AccessRequest{EmployeeID: insiderEmp, PatientID: insiderPat}, &resp); err != nil {
			return err
		}
		if resp.Warn {
			warned++
		}
	}
	fmt.Printf("insider opens relative's chart 10×: warned %d times (%s)\n", warned, "Same Last Name alerts")

	// 3. One quit → flagged forever.
	if err := post("/v1/quit", server.QuitRequest{EmployeeID: insiderEmp}, nil); err != nil {
		return err
	}
	var after server.AccessResponse
	if err := post("/v1/access", server.AccessRequest{EmployeeID: insiderEmp, PatientID: insiderPat}, &after); err != nil {
		return err
	}
	fmt.Printf("after quitting once:                flagged=%v warn=%v (always investigated)\n", after.Flagged, after.Warn)

	// 4. Close the cycle.
	var closed server.CloseResponse
	if err := post("/v1/cycle/close", struct{}{}, &closed); err != nil {
		return err
	}
	audited := 0
	for _, a := range closed.Audits {
		if a.Audited {
			audited++
		}
	}
	fmt.Printf("\ncycle closed: %d alerts in plan, %d selected for retrospective audit (cost %.1f)\n",
		len(closed.Audits), audited, closed.TotalCost)
	return nil
}
