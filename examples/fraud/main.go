// Fraud: transferring the framework to a different audit domain.
//
// The paper notes the model fits any alert-and-retrospective-audit setting
// (banks, online services). This example defines a three-type financial
// fraud taxonomy with its own payoff matrix and shows the whole decision
// loop on a synthetic business day, including how the equilibrium shifts
// audit attention to the type the attacker prefers.
//
// Run with:
//
//	go run ./examples/fraud
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	sag "github.com/auditgames/sag"
)

// The fraud alert taxonomy. Utilities follow the paper's conventions:
// catching pays a little, missing costs a lot; being caught is ruinous for
// the attacker.
var (
	typeNames = []string{"wire-transfer anomaly", "account takeover", "insider self-dealing"}
	payoffs   = []sag.Payoff{
		{DefenderCovered: 50, DefenderUncovered: -900, AttackerCovered: -4000, AttackerUncovered: 900},
		{DefenderCovered: 80, DefenderUncovered: -1200, AttackerCovered: -5000, AttackerUncovered: 1100},
		{DefenderCovered: 200, DefenderUncovered: -2500, AttackerCovered: -9000, AttackerUncovered: 1500},
	}
	// Investigating an insider case takes three times the analyst hours of
	// a wire anomaly.
	auditCosts = []float64{1, 1.5, 3}
	// Expected daily alert volumes (fraud alerts are much rarer than EMR
	// alerts, and insider cases are rarest).
	dailyVolume = []float64{60, 25, 6}
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	inst, err := sag.NewInstance(payoffs, auditCosts)
	if err != nil {
		return err
	}

	// A simple analytic estimator: alerts arrive uniformly over the
	// business day (09:00–18:00), so the expected future volume decays
	// linearly until close of business.
	businessOpen := 9 * time.Hour
	businessClose := 18 * time.Hour
	estimator := sag.EstimatorFunc(func(at time.Duration) ([]float64, error) {
		frac := 1.0
		switch {
		case at >= businessClose:
			frac = 0
		case at > businessOpen:
			frac = float64(businessClose-at) / float64(businessClose-businessOpen)
		}
		out := make([]float64, len(dailyVolume))
		for i, v := range dailyVolume {
			out[i] = v * frac
		}
		return out, nil
	})

	const budget = 12.0 // analyst-hours available for retrospective review
	engine, err := sag.NewEngine(sag.EngineConfig{
		Instance:  inst,
		Budget:    budget,
		Estimator: estimator,
		Policy:    sag.PolicyOSSP,
		Rand:      rand.New(rand.NewSource(99)),
	})
	if err != nil {
		return err
	}

	// Synthesize the day's alert stream from the volumes.
	rng := rand.New(rand.NewSource(7))
	var stream []sag.Alert
	for typeIdx, v := range dailyVolume {
		n := int(v)
		for i := 0; i < n; i++ {
			at := businessOpen + time.Duration(rng.Float64()*float64(businessClose-businessOpen))
			stream = append(stream, sag.Alert{Type: typeIdx, Time: at})
		}
	}
	sortAlerts(stream)

	fmt.Printf("fraud audit day: %d alerts, %.0f analyst-hours of audit budget\n\n", len(stream), budget)
	warnCount := make([]int, len(typeNames))
	engaged := make([]int, len(typeNames))
	for _, a := range stream {
		d, err := engine.Process(a)
		if err != nil {
			return err
		}
		if d.Warned {
			warnCount[a.Type]++
		}
		if d.AppliedSAG {
			engaged[a.Type]++
		}
	}

	fmt.Printf("%-24s %8s %8s %10s\n", "alert type", "alerts", "warned", "SAG-hit")
	counts := make([]int, len(typeNames))
	for _, a := range stream {
		counts[a.Type]++
	}
	for i, name := range typeNames {
		fmt.Printf("%-24s %8d %8d %10d\n", name, counts[i], warnCount[i], engaged[i])
	}

	s := engine.Summary()
	fmt.Printf("\nbudget spent: %.2f / %.0f analyst-hours\n", s.BudgetSpent, budget)
	fmt.Printf("mean utility: %.1f with signaling vs %.1f without (gain %+.1f per alert)\n",
		s.MeanOSSPUtility, s.MeanSSEUtility, s.MeanOSSPUtility-s.MeanSSEUtility)

	// Show where the equilibrium put the attacker: the last decision's SSE
	// holds the final coverage vector.
	if ds := engine.Decisions(); len(ds) > 0 {
		last := ds[len(ds)-1]
		fmt.Printf("\nfinal equilibrium (attacker best response: %s):\n", typeNames[last.SSE.BestType])
		for i, name := range typeNames {
			fmt.Printf("  %-24s coverage %.3f\n", name, last.SSE.Coverage[i])
		}
	}
	return nil
}

// sortAlerts orders the synthetic stream by arrival time (insertion sort:
// the stream is small and this keeps the example dependency-free).
func sortAlerts(xs []sag.Alert) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j].Time < xs[j-1].Time; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
