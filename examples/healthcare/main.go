// Healthcare: the paper's motivating domain, end to end.
//
// This example builds a synthetic hospital (employees, patients, geocoded
// addresses), generates a month of EMR access logs calibrated to the
// paper's Table 1, runs the breach-detection rules to produce typed alerts,
// fits arrival curves on the history, and then drives the online SAG engine
// through one audit day — printing, for a few alerts, exactly what the
// system would do in production: warn or not, and with what audit
// probabilities.
//
// Run with:
//
//	go run ./examples/healthcare
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	sag "github.com/auditgames/sag"
	"github.com/auditgames/sag/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Synthetic hospital + one month of access logs → typed alerts.
	//    (sim.BuildTable1Pipeline wires world → generator → rules engine.)
	const (
		totalDays   = 30
		historyDays = 29 // everything but the last day is history
		budget      = 50
	)
	fmt.Println("building synthetic hospital and scanning 30 days of accesses...")
	ds, err := sim.BuildTable1Pipeline(sim.PipelineConfig{
		Seed:             11,
		Days:             totalDays,
		BackgroundPerDay: 500,
		PairsPerKind:     120,
	}, sim.AllTable1TypeIDs())
	if err != nil {
		return err
	}

	// 2. Fit per-type arrival curves on the history window and wrap them
	//    with the paper's knowledge rollback.
	curves, err := sag.NewCurves(ds.Records(0, historyDays), ds.NumTypes, historyDays)
	if err != nil {
		return err
	}
	rollback, err := sag.NewRollback(curves, sag.DefaultRollbackThreshold)
	if err != nil {
		return err
	}

	// 3. The audit game: Table 2 payoffs, audit cost 1 per alert.
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		return err
	}
	engine, err := sag.NewEngine(sag.EngineConfig{
		Instance:  inst,
		Budget:    budget,
		Estimator: rollback,
		Policy:    sag.PolicyOSSP,
		Rand:      rand.New(rand.NewSource(11)),
	})
	if err != nil {
		return err
	}

	// 4. Replay the audit day online.
	testDay := ds.Days[historyDays]
	fmt.Printf("audit day: %d alerts, budget %d\n\n", len(testDay), budget)
	fmt.Printf("%-9s %-6s %-8s %-7s %-10s %-10s %-9s %10s\n",
		"time", "type", "θ", "warn?", "P(a|warn)", "P(a|quiet)", "budget", "E[utility]")
	shown := 0
	for i, a := range testDay {
		d, err := engine.Process(sag.Alert{Type: a.Type, Time: a.Time})
		if err != nil {
			return err
		}
		// Print a sparse sample: the first five and every 50th alert.
		if i < 5 || i%50 == 0 {
			warn := "no"
			if d.Warned {
				warn = "WARN"
			}
			fmt.Printf("%-9s T%-5d %-8.4f %-7s %-10.3f %-10.3f %-9.2f %10.2f\n",
				fmtClock(a.Time), ds.TypeIDs[a.Type], d.Theta, warn,
				d.Scheme.AuditGivenWarn(), d.Scheme.AuditGivenSilent(),
				d.BudgetAfter, d.OSSPUtility)
			shown++
		}
	}

	// 5. End-of-day report.
	s := engine.Summary()
	fmt.Printf("\nend of day: %d alerts, %d warnings shown, SAG engaged on %d alerts\n",
		s.Alerts, s.Warnings, s.SAGEngaged)
	fmt.Printf("budget spent: %.2f of %d\n", s.BudgetSpent, budget)
	fmt.Printf("mean auditor utility: %.2f with signaling vs %.2f without (gain %+.2f per alert)\n",
		s.MeanOSSPUtility, s.MeanSSEUtility, s.MeanOSSPUtility-s.MeanSSEUtility)
	return nil
}

func fmtClock(d time.Duration) string {
	h := int(d / time.Hour)
	m := int(d/time.Minute) % 60
	return fmt.Sprintf("%02d:%02d", h, m)
}
