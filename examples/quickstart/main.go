// Quickstart: compute one optimal warning scheme.
//
// This is the smallest useful program against the public API: take the
// paper's "Same Last Name" alert type, suppose the equilibrium says we can
// audit 10% of such alerts, and ask the library how to signal.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	sag "github.com/auditgames/sag"
)

func main() {
	// Alert type 1 from the paper's Table 2: an employee opened the record
	// of a patient with the same last name.
	pf := sag.Table2Payoffs()[1]
	fmt.Println("Payoffs for 'Same Last Name' alerts:")
	fmt.Printf("  auditor:  catch %+.0f / miss %+.0f\n", pf.DefenderCovered, pf.DefenderUncovered)
	fmt.Printf("  attacker: caught %+.0f / clean %+.0f\n", pf.AttackerCovered, pf.AttackerUncovered)
	fmt.Printf("  coverage needed to deter outright: %.1f%%\n\n", 100*pf.DeterrenceThreshold())

	// Suppose the online Stackelberg equilibrium allocates a marginal audit
	// probability of 10% to this type (budget is scarce).
	const theta = 0.10

	// Without signaling, the auditor's expected utility per victim alert is
	// the plain SSE value.
	fmt.Printf("Without signaling (θ = %.0f%%):\n", theta*100)
	fmt.Printf("  auditor expected utility: %+.1f\n", pf.DefenderExpected(theta))
	fmt.Printf("  attacker expected utility: %+.1f\n\n", pf.AttackerExpected(theta))

	// With optimal signaling, some alerts trigger a warning dialog. A
	// rational attacker who sees the warning quits: conditioned on warning,
	// the audit probability is high enough to make proceeding unprofitable.
	scheme, err := sag.SolveOSSP(pf, theta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("With optimal signaling (OSSP):")
	fmt.Printf("  P(warn)            = %.3f\n", scheme.WarnProbability())
	fmt.Printf("  P(audit | warn)    = %.3f\n", scheme.AuditGivenWarn())
	fmt.Printf("  P(audit | silent)  = %.3f   (Theorem 3: never audit unwarned alerts)\n", scheme.AuditGivenSilent())
	fmt.Printf("  auditor expected utility: %+.1f\n", scheme.DefenderUtility)
	fmt.Printf("  attacker expected utility: %+.1f  (Theorem 4: unchanged)\n\n", scheme.AttackerUtility)

	gain := scheme.DefenderUtility - pf.DefenderExpected(theta)
	fmt.Printf("Signaling gain for the auditor: %+.1f per victim alert (Theorem 2: never negative)\n", gain)
}
