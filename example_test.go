package sag_test

import (
	"fmt"
	"math/rand"
	"time"

	sag "github.com/auditgames/sag"
)

// ExampleSolveOSSP computes the optimal warning scheme for one alert type
// at a given marginal audit probability.
func ExampleSolveOSSP() {
	pf := sag.Table2Payoffs()[1] // "Same Last Name"
	scheme, err := sag.SolveOSSP(pf, 0.10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("warn=%.2f audit|warn=%.3f audit|silent=%.2f auditor=%.0f attacker=%.0f\n",
		scheme.WarnProbability(), scheme.AuditGivenWarn(), scheme.AuditGivenSilent(),
		scheme.DefenderUtility, scheme.AttackerUtility)
	// Output:
	// warn=0.60 audit|warn=0.167 audit|silent=0.00 auditor=-160 attacker=160
}

// ExampleSolveOnlineSSE computes the no-signaling Stackelberg commitment
// given a budget and expected future alert volumes.
func ExampleSolveOnlineSSE() {
	inst, err := sag.NewInstance([]sag.Payoff{sag.Table2Payoffs()[1]}, sag.UniformCost(1, 1))
	if err != nil {
		panic(err)
	}
	res, err := sag.SolveOnlineSSE(inst, 20, []sag.Poisson{{Lambda: 200}})
	if err != nil {
		panic(err)
	}
	fmt.Printf("coverage=%.3f auditor=%.1f\n", res.Coverage[0], res.DefenderUtility)
	// Output:
	// coverage=0.101 auditor=-349.7
}

// ExampleNewEngine runs the online SAG loop over a handful of alerts.
func ExampleNewEngine() {
	inst, err := sag.NewInstance([]sag.Payoff{sag.Table2Payoffs()[1]}, sag.UniformCost(1, 1))
	if err != nil {
		panic(err)
	}
	engine, err := sag.NewEngine(sag.EngineConfig{
		Instance: inst,
		Budget:   20,
		// A fixed estimate keeps the example deterministic; production
		// code uses sag.NewCurves + sag.NewRollback over historical logs.
		Estimator: sag.EstimatorFunc(func(time.Duration) ([]float64, error) {
			return []float64{200}, nil
		}),
		Policy: sag.PolicyOSSP,
		Rand:   rand.New(rand.NewSource(1)),
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		d, err := engine.Process(sag.Alert{Type: 0, Time: time.Duration(9+i) * time.Hour})
		if err != nil {
			panic(err)
		}
		fmt.Printf("alert %d: θ=%.3f signaling-gain=%+.1f\n", i+1, d.Theta, d.OSSPUtility-d.SSEUtility)
	}
	// Output:
	// alert 1: θ=0.101 signaling-gain=+191.0
	// alert 2: θ=0.101 signaling-gain=+191.0
	// alert 3: θ=0.101 signaling-gain=+191.0
}

// ExamplePayoff_DeterrenceThreshold shows the coverage level above which
// an attack stops being profitable.
func ExamplePayoff_DeterrenceThreshold() {
	pf := sag.Table2Payoffs()[1]
	fmt.Printf("%.4f\n", pf.DeterrenceThreshold())
	// Output:
	// 0.1667
}
