// Package sag is the public API of the Signaling Audit Game library, a
// faithful reproduction of "To Warn or Not to Warn: Online Signaling in
// Audit Games" (Yan, Xu, Vorobeychik, Li, Fabbri, Malin; ICDE 2020).
//
// # The model
//
// An auditor monitors an information system that triggers typed alerts on
// suspicious accesses (e.g. an employee opening the record of someone with
// the same last name). She can audit only B alerts per cycle. For each
// arriving alert she decides in real time (1) whether to pop a warning
// ("this access may be investigated — proceed?") and (2) the joint
// probability of auditing the alert conditioned on the signal sent. A
// rational attacker observes the committed policy; warned, he best-responds
// by quitting whenever the conditional audit probability makes the attack
// unprofitable.
//
// # The pipeline
//
// Each alert flows through three stages, all exposed here:
//
//   - SolveOnlineSSE — the Strong Stackelberg Equilibrium of the audit game
//     given the remaining budget and Poisson estimates of future alerts
//     (the paper's LP (2)); its marginal audit probabilities θ are also the
//     OSSP marginals (Theorem 1).
//   - SolveOSSP — the Online Stackelberg Signaling Policy for one alert at
//     marginal θ (LP (3) / the Theorem 3 closed form): the joint
//     distribution over {warn, silent} × {audit, skip}.
//   - Engine — the online loop tying both together with budget pacing and
//     the knowledge-rollback estimator.
//
// # Quick start
//
//	pf := sag.Table2Payoffs()[1]            // "Same Last Name"
//	scheme, _ := sag.SolveOSSP(pf, 0.10)    // audit 10% of these alerts
//	fmt.Println(scheme.WarnProbability())   // how often to pop the dialog
//
// See examples/ for full end-to-end programs and internal/experiments for
// the code that regenerates every table and figure of the paper.
package sag

import (
	"time"

	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/fallback"
	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/history"
	"github.com/auditgames/sag/internal/payoff"
	"github.com/auditgames/sag/internal/signaling"
)

// Re-exported core types. The aliases keep godoc in one place while the
// implementations live in focused internal packages.
type (
	// Payoff holds the four per-type utilities U_{d,c}, U_{d,u}, U_{a,c},
	// U_{a,u} (see payoff sign conventions in Validate).
	Payoff = payoff.Payoff

	// Scheme is a joint signaling/audit distribution for one alert: the
	// probabilities P(warn,audit), P(warn,skip), P(silent,audit),
	// P(silent,skip) plus the equilibrium utilities they induce.
	Scheme = signaling.Scheme

	// Instance is an audit game: payoffs and audit costs per alert type.
	Instance = game.Instance

	// SSEResult is a Strong Stackelberg Equilibrium: coverage vector,
	// budget allocation, best-response type, and both players' utilities.
	SSEResult = game.Result

	// Alert is one triggered alert: its type index and time of day.
	Alert = core.Alert

	// Decision is the engine's full record for one processed alert.
	Decision = core.Decision

	// Engine is the online SAG loop (one instance per audit cycle).
	Engine = core.Engine

	// EngineConfig assembles an Engine.
	EngineConfig = core.Config

	// Estimator supplies expected future alert volumes to the engine.
	Estimator = core.Estimator

	// EstimatorFunc adapts a function to the Estimator interface.
	EstimatorFunc = core.EstimatorFunc

	// Policy selects OSSP (signaling) or the plain online-SSE baseline.
	Policy = core.Policy

	// CycleSummary aggregates one finished audit cycle.
	CycleSummary = core.CycleSummary

	// CacheConfig configures the engine's per-cycle decision cache (entry
	// capacity plus budget/rate quantization of the cache key).
	CacheConfig = core.CacheConfig

	// CacheStats is a snapshot of the decision cache's hit/miss/eviction
	// counters and current size.
	CacheStats = core.CacheStats

	// Poisson is the future-alert-count distribution used by the solvers.
	Poisson = dist.Poisson

	// HistoryRecord is one historical alert used to fit arrival curves.
	HistoryRecord = history.Record

	// Curves estimates future alert volumes from historical records.
	Curves = history.Curves

	// Rollback wraps Curves with the paper's knowledge-rollback rule.
	Rollback = history.Rollback

	// RateRollback is the rate-triggered variant of the rollback rule
	// (freeze when arrivals-per-window fall below the threshold).
	RateRollback = history.RateRollback

	// AuditOutcome is an end-of-cycle retrospective audit decision.
	AuditOutcome = core.AuditOutcome

	// FallbackLevel records how a Decision was produced when the engine's
	// graceful degradation is enabled (EngineConfig.Fallback): FallbackNone
	// for the primary pipeline, or the ladder rung — cached decision,
	// last-good equilibrium, static never-warn policy — that answered after
	// the pipeline failed or exceeded EngineConfig.DecisionDeadline.
	FallbackLevel = fallback.Level

	// SSESolveFunc is the engine's injectable online-SSE solver signature
	// (EngineConfig.SSESolve); used for fault injection and solver
	// substitution.
	SSESolveFunc = core.SSESolveFunc
)

// Policies.
const (
	// PolicyOSSP enables optimal online signaling (the paper's SAG).
	PolicyOSSP = core.PolicyOSSP
	// PolicySSE disables signaling (the online SSE baseline).
	PolicySSE = core.PolicySSE
)

// Fallback ladder rungs, ordered by decreasing fidelity.
const (
	// FallbackNone marks a fully solved decision.
	FallbackNone = fallback.None
	// FallbackCache reused the freshest cached decision for the alert type.
	FallbackCache = fallback.Cache
	// FallbackLastGood reused the last successfully solved equilibrium's
	// coverage and re-ran only the signaling stage.
	FallbackLastGood = fallback.LastGood
	// FallbackStatic fell back to the conservative static policy: audit
	// with probability remaining-budget / expected-remaining-cost, never
	// warn (Theorem 2 makes the missing signal safe, merely suboptimal).
	FallbackStatic = fallback.Static
)

// DefaultRollbackThreshold is the knowledge-rollback threshold the paper
// uses (4 expected future alerts).
const DefaultRollbackThreshold = history.DefaultRollbackThreshold

// NewInstance builds an audit game from per-type payoffs and audit costs.
func NewInstance(payoffs []Payoff, auditCosts []float64) (*Instance, error) {
	return game.NewInstance(payoffs, auditCosts)
}

// UniformCost returns a cost vector with every type costing c to audit.
func UniformCost(numTypes int, c float64) []float64 {
	return game.UniformCost(numTypes, c)
}

// NewEngine builds the online SAG engine for one audit cycle.
func NewEngine(cfg EngineConfig) (*Engine, error) { return core.NewEngine(cfg) }

// SolveOnlineSSE computes the online Strong Stackelberg Equilibrium given
// the remaining budget and per-type Poisson future-alert distributions
// (the paper's LP (2) solved by the multiple-LP method).
func SolveOnlineSSE(inst *Instance, budget float64, futures []Poisson) (*SSEResult, error) {
	return game.SolveOnlineSSE(inst, budget, futures)
}

// SolveOfflineSSE computes the offline baseline over fixed full-cycle alert
// counts (the flat lines of the paper's Figures 2–3).
func SolveOfflineSSE(inst *Instance, budget float64, counts []float64) (*SSEResult, error) {
	return game.SolveOfflineSSE(inst, budget, counts)
}

// SolveOSSP computes the Online Stackelberg Signaling Policy for one alert
// whose type has the given payoffs and marginal audit probability theta.
// It uses the paper's Theorem 3 closed form when its payoff condition
// holds and the general LP (3) otherwise.
func SolveOSSP(pf Payoff, theta float64) (Scheme, error) {
	if pf.SatisfiesTheorem3() {
		return signaling.Solve(pf, theta)
	}
	return signaling.SolveLP(pf, theta)
}

// SolveOSSPLP computes the OSSP by solving LP (3) directly, regardless of
// the payoff regime (slower; useful for cross-checking).
func SolveOSSPLP(pf Payoff, theta float64) (Scheme, error) {
	return signaling.SolveLP(pf, theta)
}

// Table2Payoffs returns the paper's Table 2 payoff structures, indexed by
// alert type ID 1..7 (index 0 unused).
func Table2Payoffs() [8]Payoff { return payoff.Table2() }

// ---- Extensions (the paper's future-work directions, implemented) ----

type (
	// AttackerType is one attacker type in the Bayesian SAG extension:
	// prior probability plus private covered/uncovered utilities.
	AttackerType = signaling.AttackerType

	// DefenderSide is the auditor's (public) side of the payoff matrix,
	// used by the Bayesian solver.
	DefenderSide = signaling.DefenderSide

	// BayesianScheme is the optimal scheme against a type-uncertain
	// attacker, with each type's induced behavior.
	BayesianScheme = signaling.BayesianScheme

	// MultiResult is the equilibrium of the multi-attacker audit game.
	MultiResult = game.MultiResult

	// ResourceClass is one kind of audit capacity in the multi-resource
	// game (own budget, capability mask, cost multiplier).
	ResourceClass = game.ResourceClass

	// ResourceResult is the equilibrium of the multi-resource audit game.
	ResourceResult = game.ResourceResult

	// NSignalScheme is an n-signal generalization of Scheme, used to
	// verify that the paper's binary alphabet is already optimal.
	NSignalScheme = signaling.NSignalScheme
)

// SolveBayesianOSSP computes the optimal signaling scheme when the
// attacker's payoffs are private, drawn from a known prior over finitely
// many types (the Bayesian SAG the paper's conclusions propose).
func SolveBayesianOSSP(def DefenderSide, types []AttackerType, theta float64) (BayesianScheme, error) {
	return signaling.SolveBayesian(def, types, theta)
}

// SolveRobustOSSP computes the ε-robust OSSP: a boundedly rational
// attacker quits after a warning only when proceeding is worse than
// quitting by at least margin epsilon (the robust SAG the paper's
// conclusions call for). epsilon = 0 recovers SolveOSSP.
func SolveRobustOSSP(pf Payoff, theta, epsilon float64) (Scheme, error) {
	return signaling.SolveRobust(pf, theta, epsilon)
}

// RobustnessPremium reports the auditor utility a robustness margin costs
// relative to the exact OSSP at the same θ (always ≥ 0).
func RobustnessPremium(pf Payoff, theta, epsilon float64) (float64, error) {
	return signaling.RobustnessPremium(pf, theta, epsilon)
}

// SolveMultiAttackerSSE computes the multi-attacker online SSE:
// capabilities[i] lists the alert types attacker i can trigger (nil =
// all). Each attacker best-responds independently; the auditor's utility
// adds up across victim alerts.
func SolveMultiAttackerSSE(inst *Instance, budget float64, futures []Poisson, capabilities [][]int) (*MultiResult, error) {
	return game.SolveMultiAttackerSSE(inst, budget, futures, capabilities)
}

// SolveResourceSSE computes the online SSE with multiple defender resource
// classes (per-class budgets, capability masks, cost multipliers) — the
// multi-resource generalization of Blocki et al. that the paper builds on.
func SolveResourceSSE(inst *Instance, classes []ResourceClass, futures []Poisson) (*ResourceResult, error) {
	return game.SolveResourceSSE(inst, classes, futures)
}

// SolveNSignalOSSP computes the optimal n-signal scheme for one alert.
// n = 2 is the paper's warn/silent OSSP; larger alphabets provably (and,
// here, verifiably) add nothing against a single rational attacker.
func SolveNSignalOSSP(pf Payoff, theta float64, n int) (NSignalScheme, error) {
	return signaling.SolveNSignal(pf, theta, n)
}

// NewCurves fits per-type arrival curves from historical alert records
// (numDays days, types 0..numTypes-1).
func NewCurves(recs []HistoryRecord, numTypes, numDays int) (*Curves, error) {
	return history.NewCurves(recs, numTypes, numDays)
}

// NewRollback wraps arrival curves with the paper's knowledge-rollback
// stabilizer at the given threshold.
func NewRollback(curves *Curves, threshold float64) (*Rollback, error) {
	return history.NewRollback(curves, threshold)
}

// NewRateRollback wraps arrival curves with the rate-triggered rollback
// variant: freeze once the expected arrivals inside the window drop below
// the threshold. Pass window <= 0 for the one-hour default.
func NewRateRollback(curves *Curves, threshold float64, window time.Duration) (*RateRollback, error) {
	return history.NewRateRollback(curves, threshold, window)
}
